package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func drain(t *testing.T, p *plan.Plan, opts Options, events []event.Event) []plan.Match {
	t.Helper()
	en, err := New(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return engine.Drain(en, events)
}

var testQueries = []string{
	"PATTERN SEQ(A a, B b) WITHIN 50",
	"PATTERN SEQ(A a, B b, C c) WITHIN 80",
	"PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100",
	"PATTERN SEQ(A a, !(N n), B b) WHERE a.id = n.id WITHIN 60",
	"PATTERN SEQ(!(N n), A a, B b) WITHIN 60",
	"PATTERN SEQ(A a, B b, !(N n)) WITHIN 40",
	"PATTERN SEQ(T a, T b) WITHIN 30",
	"PATTERN SEQ(A a) WITHIN 10",
	"PATTERN SEQ(A a, B b, C c) WHERE a.id = b.id AND b.id = c.id WITHIN 120",
}

var testTypes = []string{"A", "B", "C", "N", "T"}

// TestEquivalenceWithOracleUnderDisorder is invariant I1: on any K-bounded
// shuffle, the native engine emits exactly the oracle's result set for the
// sorted stream.
func TestEquivalenceWithOracleUnderDisorder(t *testing.T) {
	for _, q := range testQueries {
		p := compile(t, q)
		for seed := int64(0); seed < 6; seed++ {
			sorted := gen.Uniform(150, testTypes, 3, 6, seed)
			k := event.Time(40)
			shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: k, Seed: seed + 100})
			want := oracle.Matches(p, sorted)
			got := drain(t, p, Options{K: k}, shuffled)
			if ok, diff := plan.SameResults(want, got); !ok {
				t.Fatalf("%s seed %d: native != oracle (%d vs %d):\n%s", q, seed, len(want), len(got), diff)
			}
		}
	}
}

func TestEquivalenceProperty(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WHERE a.id = b.id WITHIN 40")
	f := func(seed int64, ratioRaw uint8) bool {
		sorted := gen.Uniform(100, []string{"A", "B", "N"}, 2, 5, seed)
		k := event.Time(30)
		ratio := float64(ratioRaw%101) / 100
		shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: ratio, MaxDelay: k, Seed: seed + 1})
		want := oracle.Matches(p, sorted)
		got := drain(t, p, Options{K: k}, shuffled)
		ok, _ := plan.SameResults(want, got)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestExactlyOnce is invariant I2: no duplicate matches under any
// interleaving.
func TestExactlyOnce(t *testing.T) {
	for _, q := range testQueries {
		p := compile(t, q)
		for seed := int64(0); seed < 6; seed++ {
			sorted := gen.Uniform(200, testTypes, 3, 6, seed)
			shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.5, MaxDelay: 50, Seed: seed})
			got := drain(t, p, Options{K: 50}, shuffled)
			seen := make(map[string]bool, len(got))
			for _, m := range got {
				if seen[m.Key()] {
					t.Fatalf("%s seed %d: duplicate match %s", q, seed, m)
				}
				seen[m.Key()] = true
			}
		}
	}
}

// TestAblationsAgree: disabling the trigger optimization or purging (or
// purging eagerly) must not change the result set, only cost.
func TestAblationsAgree(t *testing.T) {
	variants := []Options{
		{K: 40},
		{K: 40, DisableTriggerOpt: true},
		{K: 40, PurgeEvery: -1},
		{K: 40, PurgeEvery: 1},
		{K: 40, DisableTriggerOpt: true, PurgeEvery: 1},
	}
	for _, q := range testQueries {
		p := compile(t, q)
		sorted := gen.Uniform(200, testTypes, 3, 6, 42)
		shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 40, Seed: 1})
		base := drain(t, p, variants[0], shuffled)
		for _, opts := range variants[1:] {
			got := drain(t, p, opts, shuffled)
			if ok, diff := plan.SameResults(base, got); !ok {
				t.Fatalf("%s: variant %+v differs:\n%s", q, opts, diff)
			}
		}
	}
}

func TestLateMiddleEventCompletesMatch(t *testing.T) {
	// SEQ(A,B,C): C arrives before B; the late B must trigger the match.
	p := compile(t, "PATTERN SEQ(A a, B b, C c) WITHIN 100")
	en := MustNew(p, Options{K: 50})
	if out := en.Process(event.Event{Type: "A", TS: 10, Seq: 1}); len(out) != 0 {
		t.Fatal("premature")
	}
	if out := en.Process(event.Event{Type: "C", TS: 30, Seq: 3}); len(out) != 0 {
		t.Fatal("C alone cannot match")
	}
	out := en.Process(event.Event{Type: "B", TS: 20, Seq: 2}) // late middle
	if len(out) != 1 {
		t.Fatalf("late middle event should complete the match, got %v", out)
	}
	if out[0].Key() != "1|2|3" {
		t.Errorf("match = %v", out[0])
	}
}

func TestLateFirstEventCompletesMatch(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	en := MustNew(p, Options{K: 50})
	en.Process(event.Event{Type: "B", TS: 20, Seq: 2})
	out := en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	if len(out) != 1 || out[0].Key() != "1|2" {
		t.Fatalf("late first event: %v", out)
	}
}

func TestLateLastEventTriggersNormally(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	en := MustNew(p, Options{K: 50})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	en.Process(event.Event{Type: "A", TS: 40, Seq: 3})        // advances clock
	out := en.Process(event.Event{Type: "B", TS: 20, Seq: 2}) // late last
	if len(out) != 1 || out[0].Key() != "1|2" {
		t.Fatalf("late last event: %v", out)
	}
}

func TestLateNegativeSuppressesPendingMatch(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := MustNew(p, Options{K: 50})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	out := en.Process(event.Event{Type: "B", TS: 30, Seq: 2})
	if len(out) != 0 {
		t.Fatal("match must wait for the negation gap to seal")
	}
	// The negative arrives late, inside the gap.
	out = en.Process(event.Event{Type: "N", TS: 20, Seq: 3})
	out = append(out, en.Flush()...)
	if len(out) != 0 {
		t.Fatalf("late negative should suppress the match, got %v", out)
	}
}

func TestNegationSealsWhenSafeClockPasses(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := MustNew(p, Options{K: 20})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	en.Process(event.Event{Type: "B", TS: 30, Seq: 2})
	// Gap seals at hi=30; safe must reach 30, i.e. clock 50.
	if out := en.Process(event.Event{Type: "A", TS: 45, Seq: 3}); len(out) != 0 {
		t.Fatal("safe=25 < 30: must still pend")
	}
	out := en.Process(event.Event{Type: "A", TS: 55, Seq: 4})
	if len(out) != 1 || out[0].Key() != "1|2" {
		t.Fatalf("safe=35 >= 30: should emit, got %v", out)
	}
	s := en.Metrics()
	if s.LogicalLat.Max() < 25 {
		t.Errorf("sealing latency should reflect waiting, got %d", s.LogicalLat.Max())
	}
}

func TestLateEventDroppedUnderDropPolicy(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	en := MustNew(p, Options{K: 10})
	en.Process(event.Event{Type: "A", TS: 100, Seq: 1})
	out := en.Process(event.Event{Type: "A", TS: 50, Seq: 2}) // delay 50 > K=10
	if len(out) != 0 {
		t.Fatal("late event must not match")
	}
	s := en.Metrics()
	if s.EventsLate != 1 {
		t.Errorf("EventsLate = %d", s.EventsLate)
	}
	if en.StateSize() != 1 {
		t.Errorf("late event stored: state = %d", en.StateSize())
	}
}

func TestLateEventProcessedUnderBestEffort(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 1000")
	en := MustNew(p, Options{K: 10, LatePolicy: BestEffort, PurgeEvery: -1})
	en.Process(event.Event{Type: "B", TS: 100, Seq: 2})
	out := en.Process(event.Event{Type: "A", TS: 50, Seq: 1}) // very late
	if len(out) != 1 {
		t.Fatalf("BestEffort should still match, got %v", out)
	}
	if en.Metrics().EventsLate != 1 {
		t.Error("late counter should still increment")
	}
}

func TestPurgeBoundsStateUnderDisorder(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100")
	sorted := gen.Uniform(20_000, []string{"A", "B"}, 50, 5, 3)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: 200, Seed: 4})
	en := MustNew(p, Options{K: 200, PurgeEvery: 16})
	for _, e := range shuffled {
		en.Process(e)
	}
	s := en.Metrics()
	// Window+K spans ~300 time units at mean gap ~5.5 => ~60 events in
	// horizon; peak state must be in that order of magnitude, not O(n).
	if s.PeakState > 600 {
		t.Errorf("peak state = %d, purge not bounding memory", s.PeakState)
	}
	if s.Purged == 0 {
		t.Error("nothing purged")
	}
}

func TestNoPurgeGrowsState(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 10")
	sorted := gen.Uniform(2_000, []string{"A", "B"}, 4, 5, 3)
	withPurge := MustNew(p, Options{K: 20, PurgeEvery: 1})
	noPurge := MustNew(p, Options{K: 20, PurgeEvery: -1})
	for _, e := range sorted {
		withPurge.Process(e)
		noPurge.Process(e)
	}
	if noPurge.Metrics().PeakState < 10*withPurge.Metrics().PeakState {
		t.Errorf("purge ablation: with=%d without=%d",
			withPurge.Metrics().PeakState, noPurge.Metrics().PeakState)
	}
}

func TestInOrderStreamZeroLatency(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	sorted := gen.Uniform(500, []string{"A", "B"}, 2, 5, 9)
	en := MustNew(p, Options{K: 100})
	for _, e := range sorted {
		en.Process(e)
	}
	s := en.Metrics()
	if s.Matches == 0 {
		t.Fatal("no matches in sanity stream")
	}
	// Without negation, in-order results are emitted the moment they
	// complete: no K-slack latency tax (the paper's key latency claim).
	if s.LogicalLat.Max() != 0 {
		t.Errorf("native latency on in-order stream = %d, want 0", s.LogicalLat.Max())
	}
}

func TestInvalidOptions(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a) WITHIN 10")
	if _, err := New(p, Options{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := New(p, Options{K: 1, LatePolicy: LatePolicy(99)}); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestIrrelevantAndConstFalse(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a) WHERE 1 = 2 WITHIN 10")
	en := MustNew(p, Options{K: 5})
	if out := en.Process(event.Event{Type: "A", TS: 1, Seq: 1}); len(out) != 0 {
		t.Fatal("ConstFalse emitted")
	}
	en2 := MustNew(compile(t, "PATTERN SEQ(A a) WITHIN 10"), Options{K: 5})
	en2.Process(event.Event{Type: "Z", TS: 1, Seq: 1})
	if en2.Metrics().Irrelevant != 1 {
		t.Error("irrelevant not counted")
	}
}

func TestRepeatedTypeUnderDisorder(t *testing.T) {
	p := compile(t, "PATTERN SEQ(T a, T b) WHERE b.id > a.id WITHIN 50")
	sorted := gen.Uniform(150, []string{"T"}, 5, 5, 21)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.4, MaxDelay: 30, Seed: 5})
	want := oracle.Matches(p, sorted)
	got := drain(t, p, Options{K: 30}, shuffled)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("repeated type: %s", diff)
	}
}

func TestAdversarialInterleavings(t *testing.T) {
	// Exhaustive permutations of a tiny stream (delays within K) must all
	// converge to the same result set.
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	events := []event.Event{
		{Type: "A", TS: 10, Seq: 1},
		{Type: "N", TS: 20, Seq: 2},
		{Type: "B", TS: 30, Seq: 3},
		{Type: "A", TS: 25, Seq: 4},
		{Type: "B", TS: 50, Seq: 5},
	}
	want := oracle.Matches(p, events)
	perm := make([]event.Event, len(events))
	var rec func(used []bool, depth int)
	count := 0
	rec = func(used []bool, depth int) {
		if depth == len(events) {
			got := drain(t, p, Options{K: 1000}, perm)
			if ok, diff := plan.SameResults(want, got); !ok {
				t.Fatalf("permutation %v differs:\n%s", perm, diff)
			}
			count++
			return
		}
		for i, u := range used {
			if u {
				continue
			}
			used[i] = true
			perm[depth] = events[i]
			rec(used, depth+1)
			used[i] = false
		}
	}
	rec(make([]bool, len(events)), 0)
	if count != 120 {
		t.Fatalf("tested %d permutations", count)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b, C c) WITHIN 60")
	sorted := gen.Uniform(300, []string{"A", "B", "C"}, 3, 5, 13)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 40, Seed: 6})
	a := drain(t, p, Options{K: 40}, shuffled)
	b := drain(t, p, Options{K: 40}, shuffled)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("order differs at %d", i)
		}
	}
}

func TestStressRandomSmallStreams(t *testing.T) {
	// Many tiny random streams across random K values, checked against the
	// oracle — a fuzz net for edge cases (ties, empty stacks, adjacent
	// negations).
	queries := []string{
		"PATTERN SEQ(A a, B b) WITHIN 7",
		"PATTERN SEQ(A a, !(N n), B b) WITHIN 9",
		"PATTERN SEQ(A a, B b, !(N n)) WITHIN 6",
		"PATTERN SEQ(!(N n), A a) WITHIN 5",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		q := queries[rng.Intn(len(queries))]
		p := compile(t, q)
		n := rng.Intn(12) + 2
		events := make([]event.Event, n)
		for i := range events {
			events[i] = event.Event{
				Type: []string{"A", "B", "N"}[rng.Intn(3)],
				TS:   event.Time(rng.Intn(15)),
				Seq:  event.Seq(i + 1),
			}
		}
		event.SortByTime(events)
		for i := range events {
			events[i].Seq = event.Seq(i + 1)
		}
		shuffled := gen.Shuffle(events, gen.Disorder{Ratio: 0.6, MaxDelay: 15, Seed: int64(trial)})
		want := oracle.Matches(p, events)
		got := drain(t, p, Options{K: 15, PurgeEvery: 1}, shuffled)
		if ok, diff := plan.SameResults(want, got); !ok {
			t.Fatalf("trial %d %s events=%v:\n%s", trial, q, shuffled, diff)
		}
	}
}

func TestProbeCountersQuantifyOptimization(t *testing.T) {
	// The optimization's benefit is deterministic in the probe counters:
	// probe-always fires a probe per insertion, the optimized engine only
	// for final-position or out-of-order insertions — and both enumerate
	// the same matches.
	p := compile(t, "PATTERN SEQ(A a, B b, C c) WITHIN 80")
	sorted := gen.Uniform(500, []string{"A", "B", "C"}, 3, 5, 77)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.1, MaxDelay: 40, Seed: 78})

	opt := MustNew(p, Options{K: 40})
	noopt := MustNew(p, Options{K: 40, DisableTriggerOpt: true})
	for _, e := range shuffled {
		opt.Process(e)
		noopt.Process(e)
	}
	so, sn := opt.Metrics(), noopt.Metrics()
	if sn.Probes <= so.Probes {
		t.Errorf("probe-always should probe more: %d vs %d", sn.Probes, so.Probes)
	}
	if sn.EmptyProbes <= so.EmptyProbes {
		t.Errorf("probe-always should waste more probes: %d vs %d", sn.EmptyProbes, so.EmptyProbes)
	}
	if got, want := sn.Probes-sn.EmptyProbes, so.Probes-so.EmptyProbes; got != want {
		t.Errorf("productive probes must agree: %d vs %d", got, want)
	}
}
