package core

import (
	"testing"

	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

// Edge-condition tests: parameter extremes and degenerate streams that
// historically break stream engines (tie storms, zero slack, boundary
// windows, negative timestamps).

func TestAllEventsSameTimestamp(t *testing.T) {
	// Strict sequence order means a tie storm can never match a 2-step
	// pattern, regardless of arrival order or predicates.
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	en := MustNew(p, Options{K: 10})
	var out []plan.Match
	for i := 0; i < 200; i++ {
		typ := "A"
		if i%2 == 1 {
			typ = "B"
		}
		out = append(out, en.Process(event.Event{Type: typ, TS: 42, Seq: event.Seq(i + 1)})...)
	}
	out = append(out, en.Flush()...)
	if len(out) != 0 {
		t.Fatalf("tie storm produced %d matches", len(out))
	}
}

func TestZeroSlackRequiresInOrder(t *testing.T) {
	// K=0: any regression of the clock is late and dropped; sorted input
	// remains exact.
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	sorted := gen.Uniform(200, []string{"A", "B"}, 3, 5, 91)
	want := oracle.Matches(p, sorted)
	got := drain(t, p, Options{K: 0}, sorted)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("K=0 on sorted input:\n%s", diff)
	}
	// An out-of-order event is dropped, not mis-processed.
	en := MustNew(p, Options{K: 0})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	en.Process(event.Event{Type: "A", TS: 5, Seq: 2})
	if en.Metrics().EventsLate != 1 {
		t.Error("clock regression under K=0 must count late")
	}
}

func TestWindowOne(t *testing.T) {
	// Window 1: only adjacent-timestamp pairs match.
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 1")
	en := MustNew(p, Options{K: 100})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	out := en.Process(event.Event{Type: "B", TS: 11, Seq: 2})
	if len(out) != 1 {
		t.Fatalf("span 1 <= window 1 should match: %v", out)
	}
	out = en.Process(event.Event{Type: "B", TS: 12, Seq: 3})
	if len(out) != 0 {
		t.Fatalf("span 2 > window 1 matched: %v", out)
	}
}

func TestNegativeTimestamps(t *testing.T) {
	// Logical time is int64; nothing assumes positivity.
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	en := MustNew(p, Options{K: 50})
	en.Process(event.Event{Type: "A", TS: -500, Seq: 1})
	out := en.Process(event.Event{Type: "B", TS: -450, Seq: 2})
	if len(out) != 1 {
		t.Fatalf("negative timestamps: %v", out)
	}
	if en.Metrics().EventsLate != 0 {
		t.Error("no late events expected")
	}
}

func TestSingleEventPatternUnderDisorder(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a) WHERE a.id = 1 WITHIN 10")
	sorted := gen.Uniform(100, []string{"A", "B"}, 3, 4, 93)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.5, MaxDelay: 20, Seed: 94})
	want := oracle.Matches(p, sorted)
	got := drain(t, p, Options{K: 20}, shuffled)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("single-step pattern:\n%s", diff)
	}
}

func TestAdjacentNegationsSameGap(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), !(M m), B b) WITHIN 100")
	// Either negative type in the gap suppresses.
	base := []event.Event{
		{Type: "A", TS: 10, Seq: 1},
		{Type: "B", TS: 50, Seq: 2},
	}
	if got := drain(t, p, Options{K: 100}, base); len(got) != 1 {
		t.Fatalf("clean gap: %v", got)
	}
	withN := append([]event.Event{{Type: "N", TS: 30, Seq: 3}}, base...)
	if got := drain(t, p, Options{K: 100}, withN); len(got) != 0 {
		t.Fatalf("N in gap: %v", got)
	}
	withM := append([]event.Event{{Type: "M", TS: 30, Seq: 3}}, base...)
	if got := drain(t, p, Options{K: 100}, withM); len(got) != 0 {
		t.Fatalf("M in gap: %v", got)
	}
}

func TestSameTypePositiveAndNegative(t *testing.T) {
	// The same event type can be a positive component and a negated one;
	// an event then lands in a stack AND a negative store.
	p := compile(t, "PATTERN SEQ(T a, !(T n), T b) WHERE n.x > 5 WITHIN 100")
	mk := func(ts event.Time, seq event.Seq, x int64) event.Event {
		return event.Event{Type: "T", TS: ts, Seq: seq,
			Attrs: event.Attrs{"x": event.Int(x)}}
	}
	// Middle event fails the negation's local predicate (x <= 5) but is a
	// valid positive: matches (1,2), (2,3), (1,3).
	events := []event.Event{mk(10, 1, 1), mk(20, 2, 2), mk(30, 3, 3)}
	want := oracle.Matches(p, events)
	got := drain(t, p, Options{K: 50}, events)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("dual-role type:\n%s", diff)
	}
	if len(got) != 3 {
		t.Fatalf("matches = %d, want 3", len(got))
	}
	// Now the middle event qualifies as a negative: only (1,2) and (2,3)
	// survive (the (1,3) combination is invalidated).
	events2 := []event.Event{mk(10, 1, 1), mk(20, 2, 9), mk(30, 3, 3)}
	want2 := oracle.Matches(p, events2)
	got2 := drain(t, p, Options{K: 50}, events2)
	if ok, diff := plan.SameResults(want2, got2); !ok {
		t.Fatalf("dual-role with qualifying negative:\n%s", diff)
	}
	if len(got2) != 2 {
		t.Fatalf("matches = %d, want 2", len(got2))
	}
}

func TestLargeKNeverPurgesDuringRun(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	sorted := gen.Uniform(500, []string{"A", "B"}, 3, 5, 95)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 100, Seed: 96})
	want := oracle.Matches(p, sorted)
	got := drain(t, p, Options{K: 1 << 40, PurgeEvery: 1}, shuffled)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("huge K:\n%s", diff)
	}
}

func TestDuplicateSeqDoesNotCrash(t *testing.T) {
	// Callers are told to provide unique seqs; duplicates degrade match
	// identity but must not corrupt the engine.
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	en := MustNew(p, Options{K: 50})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	en.Process(event.Event{Type: "A", TS: 12, Seq: 1})
	out := en.Process(event.Event{Type: "B", TS: 20, Seq: 2})
	if len(out) != 2 {
		t.Fatalf("matches = %d", len(out))
	}
}

// TestSoakLongStream is a longer-haul exercise (skipped with -short): a
// quarter-million-event disordered stream through every ablation variant,
// checking exactness against the in-order engine on the sorted stream and
// that state stays bounded throughout.
func TestSoakLongStream(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WHERE a.id = b.id WITHIN 200")
	sorted := gen.Uniform(250_000, []string{"A", "B", "N", "X"}, 40, 4, 101)
	const k = 300
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.25, MaxDelay: k, Seed: 102})

	want := oracle.Matches(p, sorted)
	for _, opts := range []Options{
		{K: k},
		{K: k, DisableTriggerOpt: true, PurgeEvery: 1},
	} {
		en := MustNew(p, opts)
		var got []plan.Match
		for _, e := range shuffled {
			got = append(got, en.Process(e)...)
		}
		got = append(got, en.Flush()...)
		if ok, diff := plan.SameResults(want, got); !ok {
			t.Fatalf("soak %+v: wrong results:\n%s", opts, diff)
		}
		if peak := en.Metrics().PeakState; peak > 5_000 {
			t.Fatalf("soak %+v: peak state %d not bounded", opts, peak)
		}
	}
}
