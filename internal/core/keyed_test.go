package core

import (
	"bytes"
	"fmt"
	"testing"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/plan"
)

// keyedQueries are the testQueries the planner can partition (an equality
// chain on "id" connects every component).
var keyedQueries = []string{
	"PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100",
	"PATTERN SEQ(A a, !(N n), B b) WHERE a.id = n.id AND a.id = b.id WITHIN 60",
	"PATTERN SEQ(A a, B b, C c) WHERE a.id = b.id AND b.id = c.id WITHIN 120",
	"PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e) WHERE s.id = e.id AND s.id = c.id WITHIN 120",
}

func TestAutoKeyingEnables(t *testing.T) {
	for _, q := range keyedQueries {
		p := compile(t, q)
		if p.PartitionKey != "id" {
			t.Fatalf("%s: PartitionKey = %q, want \"id\"", q, p.PartitionKey)
		}
		en := MustNew(p, Options{K: 40})
		if !en.Keyed() {
			t.Fatalf("%s: engine not keyed", q)
		}
		off := MustNew(p, Options{K: 40, DisableKeying: true})
		if off.Keyed() {
			t.Fatalf("%s: DisableKeying ignored", q)
		}
	}
	// No equality chain: keying must stay off.
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	if p.PartitionKey != "" {
		t.Fatalf("unpartitionable query got key %q", p.PartitionKey)
	}
	if MustNew(p, Options{K: 40}).Keyed() {
		t.Fatal("unpartitionable query built a keyed engine")
	}
}

// TestKeyedMatchesUnkeyedAcrossSkews: the keyed engine must emit exactly
// the unkeyed engine's result multiset at every key cardinality (one hot
// key, a few, and high cardinality) and disorder ratio.
func TestKeyedMatchesUnkeyedAcrossSkews(t *testing.T) {
	for _, q := range keyedQueries {
		p := compile(t, q)
		for _, ids := range []int{1, 10, 1000} {
			for _, ratio := range []float64{0, 0.3, 1} {
				sorted := gen.Uniform(300, []string{"A", "B", "C", "N", "SHELF", "COUNTER", "EXIT"}, ids, 4, int64(ids))
				k := event.Time(40)
				shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: ratio, MaxDelay: k, Seed: 7})
				keyed := drain(t, p, Options{K: k}, shuffled)
				unkeyed := drain(t, p, Options{K: k, DisableKeying: true}, shuffled)
				if ok, diff := plan.SameResults(unkeyed, keyed); !ok {
					t.Fatalf("%s ids=%d ratio=%.1f: keyed != unkeyed (%d vs %d):\n%s",
						q, ids, ratio, len(keyed), len(unkeyed), diff)
				}
			}
		}
	}
}

// TestStateSizeIncremental asserts the O(1) StateSize counters equal a full
// recomputation after every event, for keyed and unkeyed engines, with and
// without purging.
func TestStateSizeIncremental(t *testing.T) {
	for _, q := range testQueries {
		p := compile(t, q)
		for _, opts := range []Options{
			{K: 40},
			{K: 40, DisableKeying: true},
			{K: 40, PurgeEvery: 1},
			{K: 40, DisableKeying: true, PurgeEvery: 1},
		} {
			sorted := gen.Uniform(200, testTypes, 3, 6, 11)
			shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.4, MaxDelay: 40, Seed: 3})
			en := MustNew(p, opts)
			for i, e := range shuffled {
				en.Process(e)
				if got, want := en.StateSize(), en.recomputeStateSize(); got != want {
					t.Fatalf("%s opts=%+v event %d: StateSize %d != recomputed %d", q, opts, i, got, want)
				}
			}
			en.Flush()
			if got, want := en.StateSize(), en.recomputeStateSize(); got != want {
				t.Fatalf("%s opts=%+v after flush: StateSize %d != recomputed %d", q, opts, got, want)
			}
		}
	}
}

// TestKeyedAblationsAgree extends the ablation matrix with keying off/on
// crossed with the other knobs.
func TestKeyedAblationsAgree(t *testing.T) {
	variants := []Options{
		{K: 40},
		{K: 40, DisableKeying: true},
		{K: 40, DisableKeying: true, DisableTriggerOpt: true},
		{K: 40, DisableTriggerOpt: true},
		{K: 40, PurgeEvery: 1},
		{K: 40, DisableKeying: true, PurgeEvery: 1},
	}
	for _, q := range keyedQueries {
		p := compile(t, q)
		sorted := gen.Uniform(250, []string{"A", "B", "C", "N", "SHELF", "COUNTER", "EXIT"}, 5, 4, 42)
		shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 40, Seed: 1})
		base := drain(t, p, variants[0], shuffled)
		for _, opts := range variants[1:] {
			got := drain(t, p, opts, shuffled)
			if ok, diff := plan.SameResults(base, got); !ok {
				t.Fatalf("%s: variant %+v differs:\n%s", q, opts, diff)
			}
		}
	}
}

// kev builds a test event with an optional integer id attribute.
func kev(typ string, ts event.Time, seq event.Seq, attrs event.Attrs) event.Event {
	return event.Event{Type: typ, TS: ts, Seq: seq, Attrs: attrs}
}

// TestKeyedDropsMissingKeyEvents: events lacking the partition key cannot
// join any match; both modes must agree on the result set, and the keyed
// engine must not grow state for them.
func TestKeyedDropsMissingKeyEvents(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100")
	events := []event.Event{
		kev("A", 10, 1, event.Attrs{"id": event.Int(1)}),
		kev("A", 20, 2, nil), // no id
		kev("B", 30, 3, event.Attrs{"id": event.Int(1)}),
		kev("B", 40, 4, nil), // no id
	}
	keyed := drain(t, p, Options{K: 10}, events)
	unkeyed := drain(t, p, Options{K: 10, DisableKeying: true}, events)
	if ok, diff := plan.SameResults(unkeyed, keyed); !ok {
		t.Fatalf("keyed != unkeyed on missing-key stream:\n%s", diff)
	}
	if len(keyed) != 1 {
		t.Fatalf("got %d matches, want 1", len(keyed))
	}
	en := MustNew(p, Options{K: 10})
	en.Process(kev("A", 10, 1, nil))
	if en.StateSize() != 0 {
		t.Fatalf("missing-key event grew keyed state to %d", en.StateSize())
	}
	if en.Metrics().PredErrors == 0 {
		t.Fatal("missing-key drop not counted as predicate error")
	}
}

// TestKeyGroupsGaugeAndPurge: groups track distinct live keys and empty
// groups are dropped once the purge horizon passes them.
func TestKeyGroupsGaugeAndPurge(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 10")
	en := MustNew(p, Options{K: 5, PurgeEvery: 1})
	for i := 0; i < 8; i++ {
		en.Process(kev("A", event.Time(10+i), event.Seq(i+1), event.Attrs{"id": event.Int(int64(i))}))
	}
	if got := en.KeyGroups(); got != 8 {
		t.Fatalf("KeyGroups = %d, want 8", got)
	}
	if m := en.Metrics(); m.KeyGroups != 8 || m.PeakKeyGroups != 8 {
		t.Fatalf("metrics gauges = %d/%d, want 8/8", m.KeyGroups, m.PeakKeyGroups)
	}
	// Push the safe clock far past every instance: all groups empty out.
	en.Advance(1000)
	if got := en.KeyGroups(); got != 0 {
		t.Fatalf("KeyGroups after purge = %d, want 0", got)
	}
	if m := en.Metrics(); m.KeyGroups != 0 || m.PeakKeyGroups != 8 {
		t.Fatalf("metrics gauges after purge = %d/%d, want 0/8", m.KeyGroups, m.PeakKeyGroups)
	}
	if en.StateSize() != 0 {
		t.Fatalf("state after purge = %d, want 0", en.StateSize())
	}
}

// TestKeyedCrossKindKeys: Int(3) and Float(3.0) must land in one key group
// (Value.Equal semantics), so a float-keyed SHELF matches an int-keyed EXIT.
func TestKeyedCrossKindKeys(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100")
	events := []event.Event{
		kev("A", 10, 1, event.Attrs{"id": event.Float(3.0)}),
		kev("B", 20, 2, event.Attrs{"id": event.Int(3)}),
	}
	keyed := drain(t, p, Options{K: 10}, events)
	unkeyed := drain(t, p, Options{K: 10, DisableKeying: true}, events)
	if len(keyed) != 1 {
		t.Fatalf("cross-kind key match lost: got %d matches", len(keyed))
	}
	if ok, diff := plan.SameResults(unkeyed, keyed); !ok {
		t.Fatalf("keyed != unkeyed:\n%s", diff)
	}
}

// TestKeyedCheckpointRoundtrip: checkpoint mid-stream through keyed stacks,
// restore, finish the stream, and compare against an uninterrupted run.
func TestKeyedCheckpointRoundtrip(t *testing.T) {
	for _, q := range keyedQueries {
		p := compile(t, q)
		sorted := gen.Uniform(240, []string{"A", "B", "C", "N", "SHELF", "COUNTER", "EXIT"}, 6, 4, 9)
		k := event.Time(40)
		shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.4, MaxDelay: k, Seed: 2})

		full := drain(t, p, Options{K: k}, shuffled)

		en := MustNew(p, Options{K: k})
		if !en.Keyed() {
			t.Fatalf("%s: engine not keyed", q)
		}
		var out []plan.Match
		half := len(shuffled) / 2
		for _, e := range shuffled[:half] {
			out = append(out, en.Process(e)...)
		}
		var buf bytes.Buffer
		if err := en.Checkpoint(&buf); err != nil {
			t.Fatalf("%s: checkpoint: %v", q, err)
		}
		restored, err := Restore(p, &buf)
		if err != nil {
			t.Fatalf("%s: restore: %v", q, err)
		}
		if !restored.Keyed() {
			t.Fatalf("%s: restored engine not keyed", q)
		}
		if got, want := restored.StateSize(), en.StateSize(); got != want {
			t.Fatalf("%s: restored StateSize %d != %d", q, got, want)
		}
		if got, want := restored.StateSize(), restored.recomputeStateSize(); got != want {
			t.Fatalf("%s: restored counters %d != recomputed %d", q, got, want)
		}
		for _, e := range shuffled[half:] {
			out = append(out, restored.Process(e)...)
		}
		out = append(out, restored.Flush()...)
		if ok, diff := plan.SameResults(full, out); !ok {
			t.Fatalf("%s: checkpointed run differs:\n%s", q, diff)
		}
	}
}

// TestConstructionAllocFree: with state warm and scratch buffers in place,
// processing events must not allocate per candidate binding — only emitted
// matches may allocate.
func TestConstructionAllocFree(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 1000000")
	en := MustNew(p, Options{K: 0, PurgeEvery: -1})
	// Warm: one hot key with many A instances, so each B probe walks a
	// long stack without emitting (a.v < b.v never holds).
	for i := 0; i < 200; i++ {
		en.Process(kev("A", event.Time(i), event.Seq(i+1), event.Attrs{"id": event.Int(1), "v": event.Int(2)}))
	}
	probe := kev("B", 5000, 1000, event.Attrs{"id": event.Int(2)})
	allocs := testing.AllocsPerRun(100, func() {
		en.Process(probe)
	})
	// A B on an unpopulated key inserts one instance (one alloc for the
	// Instance, amortized slice growth) but must not allocate per scan.
	if allocs > 4 {
		t.Fatalf("Process allocated %.1f times per event, want <= 4", allocs)
	}
}

func BenchmarkKeyedVsUnkeyed(b *testing.B) {
	p, err := plan.ParseAndCompile("PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e) WHERE s.id = e.id AND s.id = c.id WITHIN 120", nil)
	if err != nil {
		b.Fatal(err)
	}
	sorted := gen.Uniform(2000, []string{"SHELF", "COUNTER", "EXIT"}, 200, 4, 5)
	stream := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 40, Seed: 6})
	for _, keyed := range []bool{true, false} {
		b.Run(fmt.Sprintf("keyed=%v", keyed), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				en := MustNew(p, Options{K: 40, DisableKeying: !keyed})
				engine.Drain(en, stream)
			}
		})
	}
}
