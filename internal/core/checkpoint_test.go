package core

import (
	"bytes"
	"strings"
	"testing"

	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/plan"
)

// TestCheckpointRestoreContinuesExactly is the recovery contract: splitting
// a stream at any point into run-checkpoint-restore-run produces exactly
// the output of an uninterrupted run.
func TestCheckpointRestoreContinuesExactly(t *testing.T) {
	queries := []string{
		"PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 50",
		"PATTERN SEQ(A a, !(N n), B b) WITHIN 60",
		"PATTERN SEQ(A a, B b, !(N n)) WITHIN 40",
	}
	for _, src := range queries {
		p := compile(t, src)
		sorted := gen.Uniform(400, []string{"A", "B", "N"}, 3, 5, 41)
		shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 40, Seed: 42})

		want := drain(t, p, Options{K: 40}, shuffled)

		for _, cut := range []int{0, 1, 137, 399, 400} {
			first := MustNew(p, Options{K: 40})
			var got []plan.Match
			for _, e := range shuffled[:cut] {
				got = append(got, first.Process(e)...)
			}
			var buf bytes.Buffer
			if err := first.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			second, err := Restore(p, &buf)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range shuffled[cut:] {
				got = append(got, second.Process(e)...)
			}
			got = append(got, second.Flush()...)
			if ok, diff := plan.SameResults(want, got); !ok {
				t.Fatalf("%s cut at %d:\n%s", src, cut, diff)
			}
		}
	}
}

func TestCheckpointPreservesPendingNegation(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := MustNew(p, Options{K: 50})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	if out := en.Process(event.Event{Type: "B", TS: 30, Seq: 2}); len(out) != 0 {
		t.Fatal("should pend")
	}
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.pending.Len() != 1 {
		t.Fatalf("pending lost: %d", restored.pending.Len())
	}
	// A late negative after restore still suppresses it.
	restored.Process(event.Event{Type: "N", TS: 20, Seq: 3})
	if out := restored.Flush(); len(out) != 0 {
		t.Fatalf("restored engine emitted suppressed match: %v", out)
	}
}

func TestRestoreErrors(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	en := MustNew(p, Options{K: 10})
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	other := compile(t, "PATTERN SEQ(A a, C c) WITHIN 50")
	if _, err := Restore(other, bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "is for query") {
		t.Errorf("plan mismatch: %v", err)
	}
	if _, err := Restore(p, strings.NewReader("{garbage")); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	if _, err := Restore(p, strings.NewReader(`{"version":99}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
	if _, err := Restore(p, strings.NewReader(`{"version":1,"planSource":"`+p.Source+`","stacks":[[]]}`)); err == nil ||
		!strings.Contains(err.Error(), "shape") {
		t.Errorf("shape mismatch: %v", err)
	}
}

// TestCheckpointEnvelopeRejectsDamage: a truncated or bit-flipped
// checkpoint must be rejected with a descriptive error instead of
// restoring garbage state. Every truncation point and every flipped byte
// must fail — the envelope validates length and CRC32 before any state is
// deserialized.
func TestCheckpointEnvelopeRejectsDamage(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WHERE a.id = b.id WITHIN 60")
	en := MustNew(p, Options{K: 20})
	sorted := gen.Uniform(60, []string{"A", "B", "N"}, 3, 4, 7)
	for _, e := range gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 20, Seed: 8}) {
		en.Process(e)
	}
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Sanity: the intact envelope restores.
	if _, err := Restore(p, bytes.NewReader(full)); err != nil {
		t.Fatalf("intact checkpoint rejected: %v", err)
	}

	for _, cut := range []int{0, 1, 5, 14, 15, len(full) / 2, len(full) - 1} {
		if _, err := Restore(p, bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(full))
		}
	}
	for _, pos := range []int{0, 6, 8, 12, 15, 40, len(full) - 1} {
		flipped := append([]byte(nil), full...)
		flipped[pos] ^= 0x20
		if _, err := Restore(p, bytes.NewReader(flipped)); err == nil {
			t.Errorf("bit flip at %d accepted", pos)
		}
	}
	if _, err := Restore(p, bytes.NewReader(nil)); err == nil {
		t.Error("empty checkpoint accepted")
	}
}

// TestCheckpointLegacyV1Restores: bare-JSON checkpoints written before the
// envelope existed still restore (the decoder sniffs the first byte).
func TestCheckpointLegacyV1Restores(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	legacy := `{"version":1,"planSource":"` + p.Source + `","k":10,"latePolicy":1,` +
		`"purgeEvery":64,"clock":100,"started":true,"arrival":3,"enumerated":0,"since":0,` +
		`"stacks":[[{"type":"A","ts":100,"seq":1}],[]],"negStores":[],"pending":null}`
	en, err := Restore(p, strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if en.clock != 100 || en.StateSize() != 1 {
		t.Errorf("legacy state not restored: clock=%d size=%d", en.clock, en.StateSize())
	}
}

func TestCheckpointRestoresOptionsAndClock(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	en := MustNew(p, Options{K: 33, LatePolicy: BestEffort, DisableTriggerOpt: true, PurgeEvery: 7})
	en.Process(event.Event{Type: "A", TS: 100, Seq: 1})
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.opts.K != 33 || r.opts.LatePolicy != BestEffort || !r.opts.DisableTriggerOpt || r.opts.PurgeEvery != 7 {
		t.Errorf("options not restored: %+v", r.opts)
	}
	if r.clock != 100 || !r.started {
		t.Errorf("clock not restored: %d %v", r.clock, r.started)
	}
	if r.StateSize() != 1 {
		t.Errorf("state not restored: %d", r.StateSize())
	}
}
