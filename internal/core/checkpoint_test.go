package core

import (
	"bytes"
	"strings"
	"testing"

	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/plan"
)

// TestCheckpointRestoreContinuesExactly is the recovery contract: splitting
// a stream at any point into run-checkpoint-restore-run produces exactly
// the output of an uninterrupted run.
func TestCheckpointRestoreContinuesExactly(t *testing.T) {
	queries := []string{
		"PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 50",
		"PATTERN SEQ(A a, !(N n), B b) WITHIN 60",
		"PATTERN SEQ(A a, B b, !(N n)) WITHIN 40",
	}
	for _, src := range queries {
		p := compile(t, src)
		sorted := gen.Uniform(400, []string{"A", "B", "N"}, 3, 5, 41)
		shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 40, Seed: 42})

		want := drain(t, p, Options{K: 40}, shuffled)

		for _, cut := range []int{0, 1, 137, 399, 400} {
			first := MustNew(p, Options{K: 40})
			var got []plan.Match
			for _, e := range shuffled[:cut] {
				got = append(got, first.Process(e)...)
			}
			var buf bytes.Buffer
			if err := first.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			second, err := Restore(p, &buf)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range shuffled[cut:] {
				got = append(got, second.Process(e)...)
			}
			got = append(got, second.Flush()...)
			if ok, diff := plan.SameResults(want, got); !ok {
				t.Fatalf("%s cut at %d:\n%s", src, cut, diff)
			}
		}
	}
}

func TestCheckpointPreservesPendingNegation(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	en := MustNew(p, Options{K: 50})
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	if out := en.Process(event.Event{Type: "B", TS: 30, Seq: 2}); len(out) != 0 {
		t.Fatal("should pend")
	}
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.pending.Len() != 1 {
		t.Fatalf("pending lost: %d", restored.pending.Len())
	}
	// A late negative after restore still suppresses it.
	restored.Process(event.Event{Type: "N", TS: 20, Seq: 3})
	if out := restored.Flush(); len(out) != 0 {
		t.Fatalf("restored engine emitted suppressed match: %v", out)
	}
}

func TestRestoreErrors(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	en := MustNew(p, Options{K: 10})
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	other := compile(t, "PATTERN SEQ(A a, C c) WITHIN 50")
	if _, err := Restore(other, bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "is for query") {
		t.Errorf("plan mismatch: %v", err)
	}
	if _, err := Restore(p, strings.NewReader("{garbage")); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	if _, err := Restore(p, strings.NewReader(`{"version":99}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
	if _, err := Restore(p, strings.NewReader(`{"version":1,"planSource":"`+p.Source+`","stacks":[[]]}`)); err == nil ||
		!strings.Contains(err.Error(), "shape") {
		t.Errorf("shape mismatch: %v", err)
	}
}

func TestCheckpointRestoresOptionsAndClock(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	en := MustNew(p, Options{K: 33, LatePolicy: BestEffort, DisableTriggerOpt: true, PurgeEvery: 7})
	en.Process(event.Event{Type: "A", TS: 100, Seq: 1})
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.opts.K != 33 || r.opts.LatePolicy != BestEffort || !r.opts.DisableTriggerOpt || r.opts.PurgeEvery != 7 {
		t.Errorf("options not restored: %+v", r.opts)
	}
	if r.clock != 100 || !r.started {
		t.Errorf("clock not restored: %d %v", r.clock, r.started)
	}
	if r.StateSize() != 1 {
		t.Errorf("state not restored: %d", r.StateSize())
	}
}
