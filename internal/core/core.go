// Package core implements the paper's contribution: a sequence scan and
// construction (SSC) operator that handles out-of-order data arrival
// natively, instead of reordering the stream in front of an order-assuming
// engine.
//
// The engine keeps the Active Instance Stacks sorted by timestamp
// (internal/ais): an out-of-order event is inserted at its timestamp-correct
// position and the predecessor pointers of affected successors are repaired.
// Construction is *trigger-based*: every match is enumerated exactly once,
// when its last-ARRIVING member is inserted. Three trigger rules make that
// exact:
//
//   - an event landing at the final pattern position always triggers
//     (classic behaviour: it can complete matches as their last element);
//   - an out-of-order event landing at any other position triggers a
//     middle-out enumeration — binding its own position first, then earlier
//     positions walking down, then later positions walking up — restricted
//     to instances already in the stacks, i.e. to events that arrived
//     before it;
//   - an in-order event at a non-final position never triggers: no event
//     with a larger timestamp can already be in the stacks, so no match can
//     complete through it. (The scan optimization of the paper; disable
//     with Options.DisableTriggerOpt for the ablation experiment.)
//
// Correct output for negation cannot be produced eagerly under disorder: a
// qualifying negative event may still be in flight. The engine relies on
// the paper's bounded-disorder assumption — no event is delayed more than K
// time units past the maximum timestamp seen (K-slack) — and defers each
// candidate match until the safe clock (maxTS − K) passes the end of its
// negation gaps, at which point every relevant negative has arrived.
//
// The same safe clock drives state purging: an instance at a non-final
// position is dead once safe − Window passes its timestamp; a final-position
// instance once safe passes it; buffered negatives once safe − 2·Window
// passes them (a leading negation's gap reaches one window behind a match
// whose first element can itself be one window behind the safe clock).
package core

import (
	"container/heap"
	"fmt"

	"oostream/internal/ais"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/plan"
)

// LatePolicy says what to do with events that violate the disorder bound K.
type LatePolicy int

const (
	// DropLate discards bound-violating events (counted in metrics). This
	// is the paper's model: K is an assumption the source must keep.
	DropLate LatePolicy = iota + 1
	// BestEffort processes bound-violating events anyway. Completeness is
	// no longer guaranteed (state they needed may have been purged), but
	// nothing already emitted becomes wrong.
	BestEffort
)

// Options configure the native engine.
type Options struct {
	// K is the disorder bound (slack) in logical milliseconds. Events
	// delayed more than K against the max seen timestamp are "late".
	K event.Time
	// LatePolicy handles late events; default DropLate.
	LatePolicy LatePolicy
	// DisableTriggerOpt turns off the scan optimization and probes for
	// completions on every insertion (ablation; still exact, slower).
	DisableTriggerOpt bool
	// PurgeEvery runs a purge pass every PurgeEvery processed events.
	// 0 selects the default (64); negative disables purging (ablation).
	PurgeEvery int
}

const defaultPurgeEvery = 64

func (o Options) normalized() (Options, error) {
	if o.K < 0 {
		return o, fmt.Errorf("K must be >= 0, got %d", o.K)
	}
	if o.LatePolicy == 0 {
		o.LatePolicy = DropLate
	}
	if o.LatePolicy != DropLate && o.LatePolicy != BestEffort {
		return o, fmt.Errorf("unknown late policy %d", o.LatePolicy)
	}
	if o.PurgeEvery == 0 {
		o.PurgeEvery = defaultPurgeEvery
	}
	return o, nil
}

// Engine is the native out-of-order SSC engine.
type Engine struct {
	plan      *plan.Plan
	opts      Options
	stacks    *ais.Stacks
	negStores []*negStore
	pending   pendingHeap
	// clock is the maximum timestamp seen (not the latest arrival's).
	clock   event.Time
	started bool
	arrival uint64
	since   int
	// enumerated counts complete bindings found by construction; used to
	// classify probes as empty (pure overhead) or productive.
	enumerated uint64
	met        metrics.Collector
}

var _ engine.Engine = (*Engine)(nil)

// New builds a native out-of-order engine.
func New(p *plan.Plan, opts Options) (*Engine, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	en := &Engine{
		plan:      p,
		opts:      opts,
		stacks:    ais.New(p.Len()),
		negStores: make([]*negStore, len(p.Negatives)),
	}
	for i := range en.negStores {
		en.negStores[i] = &negStore{}
	}
	return en, nil
}

// MustNew is New for known-good options (used in tests and examples).
func MustNew(p *plan.Plan, opts Options) *Engine {
	en, err := New(p, opts)
	if err != nil {
		panic(err)
	}
	return en
}

// Name implements engine.Engine.
func (en *Engine) Name() string { return "native" }

// Metrics implements engine.Engine.
func (en *Engine) Metrics() metrics.Snapshot { return en.met.Snapshot() }

// StateSize implements engine.Engine.
func (en *Engine) StateSize() int {
	total := en.stacks.Size() + en.pending.Len()
	for _, ns := range en.negStores {
		total += ns.len()
	}
	return total
}

// safe returns the safe clock maxTS − K: every event with a timestamp below
// it has arrived (under the disorder bound).
func (en *Engine) safe() event.Time {
	if !en.started {
		return minTime
	}
	return en.clock - en.opts.K
}

const minTime = event.Time(-1 << 62)

// Process implements engine.Engine.
func (en *Engine) Process(e event.Event) []plan.Match {
	en.arrival++
	if !en.plan.Relevant(e.Type) {
		en.met.IncIrrelevant()
		return nil
	}
	isOOO := en.started && e.TS < en.clock
	en.met.IncIn(isOOO)
	if en.started && e.TS < en.safe() {
		en.met.IncLate()
		if en.opts.LatePolicy == DropLate {
			return nil
		}
	}
	if e.TS > en.clock || !en.started {
		en.clock = e.TS
		en.started = true
	}
	var out []plan.Match
	if !en.plan.ConstFalse {
		for _, negIdx := range en.plan.NegativesForType(e.Type) {
			if plan.EvalLocal(en.plan.Negatives[negIdx].Local, e, en.met.IncPredError) {
				en.negStores[negIdx].insert(e)
			}
		}
		last := en.plan.Len() - 1
		for _, pos := range en.plan.PositionsForType(e.Type) {
			if !plan.EvalLocal(en.plan.Positives[pos].Local, e, en.met.IncPredError) {
				continue
			}
			inst := en.stacks.Insert(pos, e)
			if pos == last || isOOO || en.opts.DisableTriggerOpt {
				before := en.enumerated
				out = en.construct(inst, pos, out)
				en.met.ObserveProbe(en.enumerated == before)
			}
		}
	}
	out = en.drainPending(out)
	en.maybePurge()
	en.met.SetLiveState(en.StateSize())
	return out
}

// Advance implements engine.Advancer: a heartbeat promising that no future
// event carries a timestamp below ts − K. The clock moves forward, pending
// negation output whose gaps the new safe clock seals is emitted, and a
// purge pass runs. Moving the clock backwards is a no-op.
func (en *Engine) Advance(ts event.Time) []plan.Match {
	if !en.started || ts > en.clock {
		en.clock = ts
		en.started = true
	}
	out := en.drainPending(nil)
	en.since = en.opts.PurgeEvery // force the next purge check to run
	en.maybePurge()
	en.met.SetLiveState(en.StateSize())
	return out
}

// Flush implements engine.Engine: end of stream seals every pending match.
func (en *Engine) Flush() []plan.Match {
	var out []plan.Match
	for en.pending.Len() > 0 {
		pm := heap.Pop(&en.pending).(pendingMatch)
		out = en.finalize(pm, out)
	}
	en.met.SetLiveState(en.StateSize())
	return out
}

// construct enumerates every match that contains the just-inserted instance
// at position pos, using only instances already in the stacks. Earlier
// positions are bound walking down from pos, then later positions walking
// up; cross predicates fire as soon as their referenced slots are all bound
// (order-independent, see plan.CrossSatisfiedAt).
func (en *Engine) construct(trigger *ais.Instance, pos int, out []plan.Match) []plan.Match {
	n := en.plan.Len()
	binding := make([]event.Event, n)
	binding[pos] = trigger.Event
	mask := uint64(1) << uint(pos)
	if !en.plan.CrossSatisfiedAt(pos, mask, binding, en.met.IncPredError) {
		return out
	}
	var down func(p int, mask uint64)
	var up func(p int, mask uint64)
	down = func(p int, mask uint64) {
		if p < 0 {
			up(pos+1, mask)
			return
		}
		s := en.stacks.Stack(p)
		lowTS := trigger.Event.TS - en.plan.Window
		for i := s.UpperBound(binding[p+1].TS) - 1; i >= 0; i-- {
			cand := s.At(i)
			if cand.Event.TS < lowTS {
				break
			}
			binding[p] = cand.Event
			m := mask | 1<<uint(p)
			if en.plan.CrossSatisfiedAt(p, m, binding, en.met.IncPredError) {
				down(p-1, m)
			}
		}
	}
	up = func(p int, mask uint64) {
		if p >= n {
			out = en.emit(binding, out)
			return
		}
		s := en.stacks.Stack(p)
		highTS := binding[0].TS + en.plan.Window
		for i := s.FirstAfter(binding[p-1].TS); i < s.Len(); i++ {
			cand := s.At(i)
			if cand.Event.TS > highTS {
				break
			}
			binding[p] = cand.Event
			m := mask | 1<<uint(p)
			if en.plan.CrossSatisfiedAt(p, m, binding, en.met.IncPredError) {
				up(p+1, m)
			}
		}
	}
	down(pos-1, mask)
	return out
}

// emit routes a complete positive binding: sealed immediately when the safe
// clock already passed every negation gap, otherwise parked in the pending
// queue until it does.
func (en *Engine) emit(binding []event.Event, out []plan.Match) []plan.Match {
	en.enumerated++
	events := make([]event.Event, len(binding))
	copy(events, binding)
	sealTS := minTime
	for negIdx := range en.plan.Negatives {
		_, hi := en.plan.GapBounds(negIdx, events)
		if hi > sealTS {
			sealTS = hi
		}
	}
	pm := pendingMatch{events: events, sealTS: sealTS, madeSeq: en.arrival}
	if sealTS <= en.safe() {
		return en.finalize(pm, out)
	}
	heap.Push(&en.pending, pm)
	return out
}

// drainPending finalizes pending matches whose negation gaps the safe clock
// has sealed.
func (en *Engine) drainPending(out []plan.Match) []plan.Match {
	safe := en.safe()
	for en.pending.Len() > 0 && en.pending[0].sealTS <= safe {
		pm := heap.Pop(&en.pending).(pendingMatch)
		out = en.finalize(pm, out)
	}
	return out
}

// finalize checks the (now sealed) negation gaps and emits the match.
func (en *Engine) finalize(pm pendingMatch, out []plan.Match) []plan.Match {
	for negIdx := range en.plan.Negatives {
		lo, hi := en.plan.GapBounds(negIdx, pm.events)
		if en.negStores[negIdx].anyInGap(lo, hi, func(t event.Event) bool {
			return en.plan.NegMatches(negIdx, t, pm.events, en.met.IncPredError)
		}) {
			return out
		}
	}
	fields, err := en.plan.Project(pm.events)
	if err != nil {
		en.met.IncPredError(err)
		return out
	}
	m := plan.Match{
		Kind:      plan.Insert,
		Events:    pm.events,
		Fields:    fields,
		EmitSeq:   event.Seq(en.arrival),
		EmitClock: en.clock,
	}
	en.met.AddMatch(false, en.clock-m.Last().TS, en.arrival-pm.madeSeq)
	return append(out, m)
}

// maybePurge runs the paper's purge rules every opts.PurgeEvery events.
func (en *Engine) maybePurge() {
	if en.opts.PurgeEvery < 0 {
		return
	}
	en.since++
	if en.since < en.opts.PurgeEvery {
		return
	}
	en.since = 0
	safe := en.safe()
	last := en.plan.Len() - 1
	purged := en.stacks.PurgeBefore(func(pos int) event.Time {
		if pos == last {
			return safe
		}
		return safe - en.plan.Window
	})
	negHorizon := safe - 2*en.plan.Window
	for _, ns := range en.negStores {
		purged += ns.purgeBefore(negHorizon)
	}
	if purged > 0 {
		en.met.ObservePurge(purged)
	}
}

// pendingMatch is a binding awaiting negation sealing at sealTS.
type pendingMatch struct {
	events  []event.Event
	sealTS  event.Time
	madeSeq uint64
}

// pendingHeap is a min-heap on sealTS.
type pendingHeap []pendingMatch

func (h pendingHeap) Len() int           { return len(h) }
func (h pendingHeap) Less(i, j int) bool { return h[i].sealTS < h[j].sealTS }
func (h pendingHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)        { *h = append(*h, x.(pendingMatch)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	old[n-1] = pendingMatch{}
	*h = old[:n-1]
	return out
}
