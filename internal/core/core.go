// Package core implements the paper's contribution: a sequence scan and
// construction (SSC) operator that handles out-of-order data arrival
// natively, instead of reordering the stream in front of an order-assuming
// engine.
//
// The engine keeps the Active Instance Stacks sorted by timestamp
// (internal/ais): an out-of-order event is inserted at its timestamp-correct
// position and the predecessor pointers of affected successors are repaired.
// Construction is *trigger-based*: every match is enumerated exactly once,
// when its last-ARRIVING member is inserted. Three trigger rules make that
// exact:
//
//   - an event landing at the final pattern position always triggers
//     (classic behaviour: it can complete matches as their last element);
//   - an out-of-order event landing at any other position triggers a
//     middle-out enumeration — binding its own position first, then earlier
//     positions walking down, then later positions walking up — restricted
//     to instances already in the stacks, i.e. to events that arrived
//     before it;
//   - an in-order event at a non-final position never triggers: no event
//     with a larger timestamp can already be in the stacks, so no match can
//     complete through it. (The scan optimization of the paper; disable
//     with Options.DisableTriggerOpt for the ablation experiment.)
//
// When the plan proves the query partitionable by an equivalence attribute
// (plan.PartitionKey, e.g. the item id of the RFID query's
// `s.id = e.id AND s.id = c.id` chain), the engine keys its stacks and
// negative stores by that attribute (ais.KeyedStacks): insertion, RIP
// fix-up, construction, and negation probes touch only the trigger's key
// group, and the key-equality cross predicates are skipped as structurally
// pre-satisfied. Every match binds events of one key, so the keyed engine
// enumerates exactly the unkeyed result set while probing a fraction of
// the state. Options.DisableKeying turns the optimization off (ablation).
//
// Correct output for negation cannot be produced eagerly under disorder: a
// qualifying negative event may still be in flight. The engine relies on
// the paper's bounded-disorder assumption — no event is delayed more than K
// time units past the maximum timestamp seen (K-slack) — and defers each
// candidate match until the safe clock (maxTS − K) passes the end of its
// negation gaps, at which point every relevant negative has arrived.
//
// The same safe clock drives state purging: an instance at a non-final
// position is dead once safe − Window passes its timestamp; a final-position
// instance once safe passes it; buffered negatives once safe − 2·Window
// passes them (a leading negation's gap reaches one window behind a match
// whose first element can itself be one window behind the safe clock).
// Keyed state purges by the same horizons, group by group, dropping key
// groups that come up empty.
package core

import (
	"container/heap"
	"errors"
	"fmt"

	"oostream/internal/adaptive"
	"oostream/internal/ais"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// LatePolicy says what to do with events that violate the disorder bound K.
type LatePolicy int

const (
	// DropLate discards bound-violating events (counted in metrics). This
	// is the paper's model: K is an assumption the source must keep.
	DropLate LatePolicy = iota + 1
	// BestEffort processes bound-violating events anyway. Completeness is
	// no longer guaranteed (state they needed may have been purged), but
	// nothing already emitted becomes wrong.
	BestEffort
)

// Options configure the native engine.
type Options struct {
	// K is the disorder bound (slack) in logical milliseconds. Events
	// delayed more than K against the max seen timestamp are "late".
	K event.Time
	// LatePolicy handles late events; default DropLate.
	LatePolicy LatePolicy
	// DisableTriggerOpt turns off the scan optimization and probes for
	// completions on every insertion (ablation; still exact, slower).
	DisableTriggerOpt bool
	// DisableKeying turns off key-partitioned stacks even when the plan
	// proves the query partitionable (ablation; still exact, construction
	// then scans every instance in the window).
	DisableKeying bool
	// PurgeEvery runs a purge pass every PurgeEvery processed events.
	// 0 selects the default (64); negative disables purging (ablation).
	PurgeEvery int
	// Adaptive, when non-nil, makes K dynamic: the safe clock becomes a
	// monotone frontier over (clock − controller's effective K) instead of
	// clock − K, so the bound can grow immediately and shrink without ever
	// moving the frontier backwards — everything the purge horizons assume
	// about the safe clock keeps holding. Incompatible with BestEffort
	// (the adaptive ≡ static-max-K equivalence requires DropLate).
	Adaptive *adaptive.Controller
	// AdaptiveFeed marks this engine as the controller's owner: it feeds
	// watermark-lag observations and live-state sizes. False for engines
	// sharing a controller someone else feeds (hybrid sub-engines, shards).
	AdaptiveFeed bool
}

const defaultPurgeEvery = 64

func (o Options) normalized() (Options, error) {
	if o.K < 0 {
		return o, fmt.Errorf("K must be >= 0, got %d", o.K)
	}
	if o.LatePolicy == 0 {
		o.LatePolicy = DropLate
	}
	if o.LatePolicy != DropLate && o.LatePolicy != BestEffort {
		return o, fmt.Errorf("unknown late policy %d", o.LatePolicy)
	}
	if o.PurgeEvery == 0 {
		o.PurgeEvery = defaultPurgeEvery
	}
	if o.Adaptive != nil && o.LatePolicy == BestEffort {
		return o, fmt.Errorf("adaptive K is incompatible with the best-effort late policy")
	}
	return o, nil
}

// errMissingKey reports an event of a pattern-relevant type that lacks the
// partition key attribute: for a key-partitioned plan it can never satisfy
// the key-equality predicates, so it is counted and dropped.
var errMissingKey = errors.New("event lacks the partition key attribute")

// Engine is the native out-of-order SSC engine.
type Engine struct {
	plan *plan.Plan
	opts Options

	// Unkeyed state: one global AIS and one negative store per negation.
	stacks    *ais.Stacks
	negStores []*negStore

	// Keyed state (keyAttr != ""): stacks and negative stores partitioned
	// by the plan's equivalence attribute; key-equality predicates are
	// excluded from cross (positives) and marked in negSkip (negations).
	keyAttr string
	kstacks *ais.KeyedStacks
	knegs   []map[event.Value]*negStore
	negSkip [][]bool

	// cross is the construction-time cross-predicate view: the full set
	// when unkeyed, the set minus pre-satisfied key equalities when keyed.
	cross *plan.CrossView

	pending pendingHeap
	// clock is the maximum timestamp seen (not the latest arrival's).
	clock   event.Time
	started bool
	// frontier is the adaptive safe clock: the max over history of
	// (clock − effective K), monotone non-decreasing even when K shrinks.
	// Every admitted event's timestamp is ≥ the frontier at admission
	// ≥ clock − (max K ever published), which is what makes the adaptive
	// run output-equivalent to a static run at K = max K observed. Unused
	// (minTime) when opts.Adaptive is nil.
	frontier event.Time
	// shedded counts events discarded by overload degradation.
	shedded uint64
	arrival uint64
	since   int
	// liveStack and liveNeg count live stack instances and buffered
	// negatives incrementally, making StateSize O(1) instead of a
	// per-event recomputation.
	liveStack int
	liveNeg   int
	// enumerated counts complete bindings found by construction; used to
	// classify probes as empty (pure overhead) or productive.
	enumerated uint64
	met        metrics.Collector
	// trace, when non-nil, observes match-lifecycle steps. Every call site
	// nil-checks first so the unhooked hot path pays one predictable branch
	// and constructs no TraceEvent. traceName labels emitted trace events
	// (the bound series name, or the strategy name).
	trace     obsv.TraceHook
	traceName string

	// lat, when non-nil, stamps wall-clock stage boundaries on sampled
	// event spans; nil costs one predictable branch per event.
	lat *obsv.LatencySampler

	// prov enables lineage-record construction on emitted matches. Like the
	// trace hook, every site checks the flag first, so the disabled hot
	// path pays one predictable branch and builds nothing. restored marks
	// an engine rebuilt from a checkpoint: lineage is not checkpointed, so
	// matches sealed from restored pending state carry truncated records.
	// lineageLive/lineageBytes track records currently retained by pending
	// matches, feeding the lineage gauges.
	prov         bool
	restored     bool
	lineageLive  int
	lineageBytes int

	// Construction scratch, reused across triggers so the hot path does
	// not allocate: binding holds the partial binding (copied only on
	// emit), negScratch the negation-probe binding, localScratch the
	// one-slot local-predicate binding. walk* carry the current trigger's
	// stacks/key/position through the recursive enumeration; walkTrigSeq
	// and walkVisited are maintained only under prov.
	binding      []event.Event
	negScratch   []event.Event
	localScratch []event.Event
	walkStacks   *ais.Stacks
	walkKey      event.Value
	walkPos      int
	walkTrigTS   event.Time
	walkTrigSeq  event.Seq
	walkVisited  int
}

var _ engine.Engine = (*Engine)(nil)

// New builds a native out-of-order engine.
func New(p *plan.Plan, opts Options) (*Engine, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	en := &Engine{
		plan:         p,
		opts:         opts,
		frontier:     minTime,
		binding:      make([]event.Event, p.Len()),
		negScratch:   make([]event.Event, p.Len()+1),
		localScratch: make([]event.Event, 1),
	}
	if attr := p.PartitionKey; attr != "" && !opts.DisableKeying {
		en.keyAttr = attr
		en.kstacks = ais.NewKeyed(p.Len())
		en.knegs = make([]map[event.Value]*negStore, len(p.Negatives))
		for i := range en.knegs {
			en.knegs[i] = make(map[event.Value]*negStore)
		}
		skip := make(map[int]bool)
		for _, l := range p.EqLinks {
			if l.Attr == attr {
				skip[l.CrossIdx] = true
			}
		}
		en.cross = p.CrossView(func(i int) bool { return skip[i] })
		en.negSkip = make([][]bool, len(p.Negatives))
		for i := range en.negSkip {
			en.negSkip[i] = make([]bool, len(p.Negatives[i].Cross))
		}
		for _, l := range p.NegEqLinks {
			if l.Attr == attr {
				en.negSkip[l.NegIdx][l.CrossIdx] = true
			}
		}
	} else {
		en.stacks = ais.New(p.Len())
		en.negStores = make([]*negStore, len(p.Negatives))
		for i := range en.negStores {
			en.negStores[i] = &negStore{}
		}
		en.cross = p.CrossView(nil)
	}
	return en, nil
}

// MustNew is New for known-good options (used in tests and examples).
func MustNew(p *plan.Plan, opts Options) *Engine {
	en, err := New(p, opts)
	if err != nil {
		panic(err)
	}
	return en
}

// Name implements engine.Engine.
func (en *Engine) Name() string { return "native" }

// Observe implements engine.Observable.
func (en *Engine) Observe(s *obsv.Series, hook obsv.TraceHook) {
	en.met.Bind(s)
	en.trace = hook
	if s != nil && s.Name() != "" {
		en.traceName = s.Name()
	} else if en.traceName == "" {
		en.traceName = en.Name()
	}
}

// EnableProvenance implements engine.Provenancer: every match emitted from
// now on carries a lineage record. Must be called before the first Process.
func (en *Engine) EnableProvenance() { en.prov = true }

// Metrics implements engine.Engine.
func (en *Engine) Metrics() metrics.Snapshot { return en.met.Snapshot() }

// Keyed reports whether the engine runs with key-partitioned stacks.
func (en *Engine) Keyed() bool { return en.keyAttr != "" }

// KeyGroups returns the number of live stack key groups (0 when unkeyed).
func (en *Engine) KeyGroups() int {
	if en.kstacks == nil {
		return 0
	}
	return en.kstacks.Groups()
}

// StateSize implements engine.Engine in O(1): the counts are maintained
// incrementally on insertion and purging (recomputeStateSize cross-checks
// them in tests).
func (en *Engine) StateSize() int {
	return en.liveStack + en.liveNeg + en.pending.Len()
}

// recomputeStateSize walks the actual structures; tests assert it equals
// the incrementally maintained StateSize after every event.
func (en *Engine) recomputeStateSize() int {
	total := en.pending.Len()
	if en.Keyed() {
		en.kstacks.Range(func(_ event.Value, st *ais.Stacks) {
			total += st.Size()
		})
		for _, m := range en.knegs {
			for _, ns := range m {
				total += ns.len()
			}
		}
		return total
	}
	total += en.stacks.Size()
	for _, ns := range en.negStores {
		total += ns.len()
	}
	return total
}

// safe returns the safe clock: every event with a timestamp below it has
// arrived (under the disorder bound). maxTS − K for static K; the monotone
// frontier when K is adaptive.
func (en *Engine) safe() event.Time {
	if !en.started {
		return minTime
	}
	if en.opts.Adaptive != nil {
		return en.frontier
	}
	return en.clock - en.opts.K
}

// advanceFrontier folds the controller's current effective K into the
// monotone frontier. Cheap (one atomic load); called around every clock
// move so a growing bound takes effect immediately and a shrinking one
// only lets future clock advances move the frontier faster.
func (en *Engine) advanceFrontier() {
	if en.opts.Adaptive == nil || !en.started {
		return
	}
	if cand := en.clock - en.opts.Adaptive.EffectiveK(); cand > en.frontier {
		en.frontier = cand
	}
}

const minTime = event.Time(-1 << 62)

// Process implements engine.Engine.
func (en *Engine) Process(e event.Event) []plan.Match {
	out := en.processOne(e, nil)
	en.lat.StageEnd(e.Seq, obsv.StageConstruct)
	en.maybePurge()
	en.publishGauges()
	return out
}

// SetLatencySampler implements engine.LatencySampled: sampled events get
// their admission-to-construction time attributed at the end of
// processOne.
func (en *Engine) SetLatencySampler(ls *obsv.LatencySampler) { en.lat = ls }

// ProcessBatch implements engine.BatchProcessor: the per-event admission,
// insertion, and pending-drain pipeline runs unchanged for every event,
// but the purge pass and gauge publication are deferred to the batch
// boundary. Under DropLate that deferral is output-invisible: purging only
// removes instances the window bound already excludes from every future
// enumeration (construct's walks break on the window before touching
// them), so matches, retractions, lineage, and non-purge trace operations
// are identical to the per-event path. Under BestEffort a bound-violating
// event may bind state a purge would have removed, making purge timing
// observable — so that policy keeps the per-event cadence.
func (en *Engine) ProcessBatch(batch []event.Event) []plan.Match {
	var out []plan.Match
	if en.opts.LatePolicy == BestEffort {
		for i := range batch {
			out = en.processOne(batch[i], out)
			en.lat.StageEnd(batch[i].Seq, obsv.StageConstruct)
			en.maybePurge()
		}
	} else {
		for i := range batch {
			out = en.processOne(batch[i], out)
			en.lat.StageEnd(batch[i].Seq, obsv.StageConstruct)
		}
		en.maybePurge()
	}
	en.publishGauges()
	return out
}

// processOne is the per-event pipeline shared by Process and ProcessBatch:
// admission (metrics, trace, late check, clock), AIS insertion with
// trigger-based construction, and the pending drain. Purging and gauge
// publication are the caller's responsibility.
func (en *Engine) processOne(e event.Event, out []plan.Match) []plan.Match {
	en.arrival++
	if !en.plan.Relevant(e.Type) {
		en.met.IncIrrelevant()
		return out
	}
	isOOO := en.started && e.TS < en.clock
	var lag event.Time
	if isOOO {
		lag = en.clock - e.TS
	}
	en.met.IncIn(isOOO, lag)
	if en.opts.AdaptiveFeed {
		// Same observation point as Series.WatermarkLag — bound violators
		// included, so a late storm is evidence to grow K, not invisible.
		en.opts.Adaptive.ObserveLag(lag)
	}
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpAdmit, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
	}
	// Sample the frontier before the late check: every event admitted below
	// is then provably within the current effective K of the clock.
	en.advanceFrontier()
	if en.started && e.TS < en.safe() {
		if ad := en.opts.Adaptive; ad != nil && ad.Degraded() && e.TS >= en.clock-ad.NominalK() {
			// The event violates only the degradation-clamped bound, not the
			// nominal one: it was deliberately shed, not late.
			en.shedded++
			en.met.IncShedded()
			if en.trace != nil {
				en.trace.Trace(obsv.TraceEvent{Op: obsv.OpShed, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
			}
			return out
		}
		en.met.IncLate()
		if en.opts.LatePolicy == DropLate {
			if en.trace != nil {
				en.trace.Trace(obsv.TraceEvent{Op: obsv.OpDrop, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
			}
			return out
		}
	}
	if e.TS > en.clock || !en.started {
		en.clock = e.TS
		en.started = true
		en.advanceFrontier()
	}
	if !en.plan.ConstFalse {
		if en.Keyed() {
			out = en.insertKeyed(e, isOOO, out)
		} else {
			out = en.insertUnkeyed(e, isOOO, out)
		}
	}
	out = en.drainPending(out)
	en.since++
	if en.opts.AdaptiveFeed {
		en.opts.Adaptive.NoteState(en.StateSize())
	}
	return out
}

// publishGauges refreshes the state gauges: once per Process call, once
// per batch on the ProcessBatch path.
func (en *Engine) publishGauges() {
	en.met.SetLiveState(en.StateSize())
	if en.Keyed() {
		en.met.SetKeyGroups(en.kstacks.Groups())
	}
	if en.prov {
		en.met.SetLineageRetained(en.lineageLive, en.lineageBytes)
	}
	if ad := en.opts.Adaptive; ad != nil {
		en.met.SetCurrentK(ad.EffectiveK())
		en.met.SetDegraded(ad.Degraded())
	}
}

// insertUnkeyed is the classic path: one global stack set and negative
// store, cross predicates all evaluated during construction.
func (en *Engine) insertUnkeyed(e event.Event, isOOO bool, out []plan.Match) []plan.Match {
	for _, negIdx := range en.plan.NegativesForType(e.Type) {
		if plan.EvalLocalScratch(en.plan.Negatives[negIdx].Local, e, en.localScratch, en.met.IncPredError) {
			en.negStores[negIdx].insert(e)
			en.liveNeg++
		}
	}
	last := en.plan.Len() - 1
	for _, pos := range en.plan.PositionsForType(e.Type) {
		if !plan.EvalLocalScratch(en.plan.Positives[pos].Local, e, en.localScratch, en.met.IncPredError) {
			continue
		}
		inst := en.stacks.Insert(pos, e)
		en.liveStack++
		en.noteInsert(en.stacks, e, pos)
		if pos == last || isOOO || en.opts.DisableTriggerOpt {
			if en.trace != nil {
				en.trace.Trace(obsv.TraceEvent{Op: obsv.OpTrigger, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq, N: pos})
			}
			before := en.enumerated
			out = en.construct(en.stacks, event.Value{}, inst, pos, out)
			en.met.ObserveProbe(en.enumerated == before)
		}
	}
	return out
}

// noteInsert records the instrumentation for one stack insertion: the push
// itself and any RIP repairs the insertion forced on the next stack.
func (en *Engine) noteInsert(st *ais.Stacks, e event.Event, pos int) {
	fixups := st.LastFixups()
	en.met.AddRepairs(fixups)
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpStackPush, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq, N: pos})
		if fixups > 0 {
			en.trace.Trace(obsv.TraceEvent{Op: obsv.OpRepair, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq, N: fixups})
		}
	}
}

// insertKeyed routes the event to its key group. Events lacking the key
// cannot satisfy the key-equality predicates and are counted and dropped,
// mirroring the unkeyed engine's predicate-error non-match.
func (en *Engine) insertKeyed(e event.Event, isOOO bool, out []plan.Match) []plan.Match {
	key, ok := plan.KeyOf(e, en.keyAttr)
	if !ok {
		en.met.IncPredError(errMissingKey)
		return out
	}
	for _, negIdx := range en.plan.NegativesForType(e.Type) {
		if plan.EvalLocalScratch(en.plan.Negatives[negIdx].Local, e, en.localScratch, en.met.IncPredError) {
			en.insertKeyedNeg(negIdx, key, e)
		}
	}
	last := en.plan.Len() - 1
	for _, pos := range en.plan.PositionsForType(e.Type) {
		if !plan.EvalLocalScratch(en.plan.Positives[pos].Local, e, en.localScratch, en.met.IncPredError) {
			continue
		}
		inst, st := en.kstacks.Insert(key, pos, e)
		en.liveStack++
		en.noteInsert(st, e, pos)
		if pos == last || isOOO || en.opts.DisableTriggerOpt {
			if en.trace != nil {
				en.trace.Trace(obsv.TraceEvent{Op: obsv.OpTrigger, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq, N: pos})
			}
			before := en.enumerated
			out = en.construct(st, key, inst, pos, out)
			en.met.ObserveProbe(en.enumerated == before)
		}
	}
	return out
}

func (en *Engine) insertKeyedNeg(negIdx int, key event.Value, e event.Event) {
	m := en.knegs[negIdx]
	ns := m[key]
	if ns == nil {
		ns = &negStore{}
		m[key] = ns
	}
	ns.insert(e)
	en.liveNeg++
}

// Advance implements engine.Advancer: a heartbeat promising that no future
// event carries a timestamp below ts − K. The clock moves forward, pending
// negation output whose gaps the new safe clock seals is emitted, and a
// purge pass runs. Moving the clock backwards is a no-op.
func (en *Engine) Advance(ts event.Time) []plan.Match {
	if !en.started || ts > en.clock {
		en.clock = ts
		en.started = true
	}
	en.advanceFrontier()
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpHeartbeat, Engine: en.traceName, TS: ts})
	}
	out := en.drainPending(nil)
	en.since = en.opts.PurgeEvery // force the next purge check to run
	en.maybePurge()
	en.publishGauges()
	return out
}

// Flush implements engine.Engine: end of stream seals every pending match.
func (en *Engine) Flush() []plan.Match {
	var out []plan.Match
	for en.pending.Len() > 0 {
		out = en.finalize(en.popPending(), out)
	}
	en.met.SetLiveState(en.StateSize())
	if en.prov {
		en.met.SetLineageRetained(en.lineageLive, en.lineageBytes)
	}
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpFlush, Engine: en.traceName, TS: en.clock})
	}
	return out
}

// construct enumerates every match that contains the just-inserted instance
// at position pos, using only instances already in st (the global stacks,
// or the trigger's key group). Earlier positions are bound walking down
// from pos, then later positions walking up; cross predicates fire as soon
// as their referenced slots are all bound (order-independent, see
// plan.CrossView.SatisfiedAt). The binding buffer is engine scratch,
// copied only when a complete match emits.
func (en *Engine) construct(st *ais.Stacks, key event.Value, trigger *ais.Instance, pos int, out []plan.Match) []plan.Match {
	en.binding[pos] = trigger.Event
	mask := uint64(1) << uint(pos)
	if !en.cross.SatisfiedAt(pos, mask, en.binding, en.met.IncPredError) {
		return out
	}
	en.walkStacks = st
	en.walkKey = key
	en.walkPos = pos
	en.walkTrigTS = trigger.Event.TS
	if en.prov {
		en.walkTrigSeq = trigger.Event.Seq
		en.walkVisited = 0
	}
	return en.walkDown(pos-1, mask, out)
}

// walkDown binds positions pos-1 .. 0 with instances earlier than the
// already-bound successor, then hands over to walkUp.
func (en *Engine) walkDown(p int, mask uint64, out []plan.Match) []plan.Match {
	if p < 0 {
		return en.walkUp(en.walkPos+1, mask, out)
	}
	s := en.walkStacks.Stack(p)
	lowTS := en.walkTrigTS - en.plan.Window
	for i := s.UpperBound(en.binding[p+1].TS) - 1; i >= 0; i-- {
		cand := s.At(i)
		if cand.Event.TS < lowTS {
			break
		}
		if en.prov {
			en.walkVisited++
		}
		en.binding[p] = cand.Event
		m := mask | 1<<uint(p)
		if en.cross.SatisfiedAt(p, m, en.binding, en.met.IncPredError) {
			out = en.walkDown(p-1, m, out)
		}
	}
	return out
}

// walkUp binds positions walkPos+1 .. n-1 with instances later than the
// already-bound predecessor, emitting when the binding completes.
func (en *Engine) walkUp(p int, mask uint64, out []plan.Match) []plan.Match {
	if p >= en.plan.Len() {
		return en.emit(en.binding, out)
	}
	s := en.walkStacks.Stack(p)
	highTS := en.binding[0].TS + en.plan.Window
	for i := s.FirstAfter(en.binding[p-1].TS); i < s.Len(); i++ {
		cand := s.At(i)
		if cand.Event.TS > highTS {
			break
		}
		if en.prov {
			en.walkVisited++
		}
		en.binding[p] = cand.Event
		m := mask | 1<<uint(p)
		if en.cross.SatisfiedAt(p, m, en.binding, en.met.IncPredError) {
			out = en.walkUp(p+1, m, out)
		}
	}
	return out
}

// emit routes a complete positive binding: sealed immediately when the safe
// clock already passed every negation gap, otherwise parked in the pending
// queue until it does. The scratch binding is copied here — the single
// allocation a match costs.
func (en *Engine) emit(binding []event.Event, out []plan.Match) []plan.Match {
	en.enumerated++
	events := make([]event.Event, len(binding))
	copy(events, binding)
	sealTS := minTime
	for negIdx := range en.plan.Negatives {
		_, hi := en.plan.GapBounds(negIdx, events)
		if hi > sealTS {
			sealTS = hi
		}
	}
	pm := pendingMatch{events: events, key: en.walkKey, sealTS: sealTS, madeSeq: en.arrival}
	if en.prov {
		pm.prov = en.lineageFor(pm)
		pm.prov.TriggerSeq = en.walkTrigSeq
		pm.prov.TriggerTS = en.walkTrigTS
		pm.prov.TriggerPos = en.walkPos
		pm.prov.Traversed = en.walkVisited
		en.met.IncLineage()
	}
	if sealTS <= en.safe() {
		return en.finalize(pm, out)
	}
	if pm.prov != nil {
		en.lineageLive++
		en.lineageBytes += pm.prov.SizeBytes()
	}
	heap.Push(&en.pending, pm)
	return out
}

// lineageFor builds the binding-derivable part of a pending match's lineage
// record (events, key, window, seal). Trigger details are added by emit;
// checkpoint-restored pendings get only this part, marked Truncated.
func (en *Engine) lineageFor(pm pendingMatch) *provenance.Record {
	rec := &provenance.Record{
		Kind:     provenance.KindInsert,
		Events:   provenance.Refs(pm.events),
		Shard:    -1,
		WindowLo: pm.events[0].TS,
		WindowHi: pm.events[0].TS + en.plan.Window,
		SealTS:   pm.sealTS,
	}
	if en.Keyed() {
		rec.Key = pm.key.String()
		rec.KeyAttr = en.keyAttr
	}
	return rec
}

// popPending removes the minimum pending match, releasing its retained
// lineage accounting.
func (en *Engine) popPending() pendingMatch {
	pm := heap.Pop(&en.pending).(pendingMatch)
	if pm.prov != nil {
		en.lineageLive--
		en.lineageBytes -= pm.prov.SizeBytes()
	}
	return pm
}

// drainPending finalizes pending matches whose negation gaps the safe clock
// has sealed.
func (en *Engine) drainPending(out []plan.Match) []plan.Match {
	safe := en.safe()
	for en.pending.Len() > 0 && en.pending[0].sealTS <= safe {
		out = en.finalize(en.popPending(), out)
	}
	return out
}

// negStoreFor returns the store to probe for a pending match: the global
// one when unkeyed, the match's key group otherwise (nil when the group
// has no buffered negatives — common, and trivially no invalidator).
func (en *Engine) negStoreFor(negIdx int, pm pendingMatch) *negStore {
	if en.Keyed() {
		return en.knegs[negIdx][pm.key]
	}
	return en.negStores[negIdx]
}

// finalize checks the (now sealed) negation gaps and emits the match.
func (en *Engine) finalize(pm pendingMatch, out []plan.Match) []plan.Match {
	for negIdx := range en.plan.Negatives {
		ns := en.negStoreFor(negIdx, pm)
		if ns == nil {
			continue
		}
		lo, hi := en.plan.GapBounds(negIdx, pm.events)
		for i := ns.firstAfter(lo); i < ns.len() && ns.items[i].TS < hi; i++ {
			if en.plan.NegMatchesScratch(negIdx, ns.items[i], pm.events, en.negSkipFor(negIdx), en.negScratch, en.met.IncPredError) {
				return out
			}
		}
	}
	fields, err := en.plan.Project(pm.events)
	if err != nil {
		en.met.IncPredError(err)
		return out
	}
	m := plan.Match{
		Kind:      plan.Insert,
		Events:    pm.events,
		Fields:    fields,
		EmitSeq:   event.Seq(en.arrival),
		EmitClock: en.clock,
	}
	if en.prov {
		rec := pm.prov
		if rec == nil {
			// Pending state restored from a checkpoint carries no lineage
			// (it is not checkpointed): rebuild what the binding proves and
			// mark the record truncated.
			rec = en.lineageFor(pm)
			rec.Truncated = true
			en.met.IncLineage()
		}
		rec.EmitClock = en.clock
		m.Prov = rec
	}
	en.met.AddMatch(false, en.clock-m.Last().TS, en.arrival-pm.madeSeq)
	if en.trace != nil {
		te := obsv.TraceEvent{Op: obsv.OpEmit, Engine: en.traceName, TS: m.Last().TS, Seq: m.EmitSeq, N: len(m.Events)}
		if en.prov {
			te.Match = m.Prov.MatchKey()
		}
		en.trace.Trace(te)
	}
	return append(out, m)
}

// negSkipFor returns the pre-satisfied cross-predicate mask for a negation
// (nil when unkeyed: everything evaluates).
func (en *Engine) negSkipFor(negIdx int) []bool {
	if en.negSkip == nil {
		return nil
	}
	return en.negSkip[negIdx]
}

// maybePurge runs the paper's purge rules once the processed-event counter
// (advanced by processOne) reaches opts.PurgeEvery. Process checks after
// every event; ProcessBatch defers the check to the batch boundary (at
// most one pass per batch — a longer effective cadence, equally correct
// under DropLate since purging is output-invisible there).
func (en *Engine) maybePurge() {
	if en.opts.PurgeEvery < 0 {
		return
	}
	if en.since < en.opts.PurgeEvery {
		return
	}
	en.since = 0
	safe := en.safe()
	last := en.plan.Len() - 1
	horizon := func(pos int) event.Time {
		if pos == last {
			return safe
		}
		return safe - en.plan.Window
	}
	var purged int
	if en.Keyed() {
		purged = en.kstacks.PurgeBefore(horizon)
	} else {
		purged = en.stacks.PurgeBefore(horizon)
	}
	en.liveStack -= purged
	negHorizon := safe - 2*en.plan.Window
	negPurged := 0
	if en.Keyed() {
		for _, m := range en.knegs {
			for key, ns := range m {
				negPurged += ns.purgeBefore(negHorizon)
				if ns.len() == 0 {
					delete(m, key)
				}
			}
		}
	} else {
		for _, ns := range en.negStores {
			negPurged += ns.purgeBefore(negHorizon)
		}
	}
	en.liveNeg -= negPurged
	if purged+negPurged > 0 {
		en.met.ObservePurge(purged + negPurged)
		if en.trace != nil {
			en.trace.Trace(obsv.TraceEvent{Op: obsv.OpPurge, Engine: en.traceName, TS: safe, N: purged + negPurged})
		}
	}
}

// StateSnapshot implements engine.Introspectable: a read-only view of the
// engine's live state. Not safe concurrently with Process.
func (en *Engine) StateSnapshot() *provenance.StateSnapshot {
	name := en.traceName
	if name == "" {
		name = en.Name()
	}
	s := &provenance.StateSnapshot{
		Engine:        name,
		Started:       en.started,
		Clock:         en.clock,
		Safe:          en.safe(),
		StackDepths:   make([]int, en.plan.Len()),
		NegStoreSizes: make([]int, len(en.plan.Negatives)),
		Pending:       en.pending.Len(),
		Lineage: provenance.LineageStats{
			Enabled:   en.prov,
			Live:      en.lineageLive,
			Bytes:     en.lineageBytes,
			Truncated: en.restored,
		},
	}
	s.PurgeFrontier = s.Safe - en.plan.Window
	if ad := en.opts.Adaptive; ad != nil {
		cs := ad.Snapshot()
		s.Adaptive = &provenance.AdaptiveStats{
			Enabled:      cs.Enabled,
			EffectiveK:   cs.EffectiveK,
			NominalK:     cs.NominalK,
			MaxKObserved: cs.MaxKObserved,
			Degraded:     cs.Degraded,
			Shedded:      en.shedded,
			Resizes:      cs.Resizes,
		}
	}
	if en.Keyed() {
		s.KeyAttr = en.keyAttr
		s.KeyGroups = en.kstacks.Groups()
		groups := make([]provenance.KeyGroupStat, 0, s.KeyGroups)
		en.kstacks.Range(func(key event.Value, st *ais.Stacks) {
			for pos := 0; pos < en.plan.Len(); pos++ {
				s.StackDepths[pos] += st.Stack(pos).Len()
			}
			groups = append(groups, provenance.KeyGroupStat{Key: key.String(), Size: st.Size()})
		})
		s.TopKeyGroups = provenance.TopK(groups, 8)
		for negIdx, m := range en.knegs {
			for _, ns := range m {
				s.NegStoreSizes[negIdx] += ns.len()
			}
		}
	} else {
		for pos := 0; pos < en.plan.Len(); pos++ {
			s.StackDepths[pos] = en.stacks.Stack(pos).Len()
		}
		for negIdx, ns := range en.negStores {
			s.NegStoreSizes[negIdx] = ns.len()
		}
	}
	return s
}

// pendingMatch is a binding awaiting negation sealing at sealTS. key is the
// partition key of its events (zero Value when the engine is unkeyed).
// prov is the match's lineage record, nil unless provenance is enabled
// (and nil for pendings rebuilt from a checkpoint — lineage is not
// checkpointed; finalize then emits a truncated record).
type pendingMatch struct {
	events  []event.Event
	key     event.Value
	sealTS  event.Time
	madeSeq uint64
	prov    *provenance.Record
}

// pendingHeap is a min-heap on sealTS.
type pendingHeap []pendingMatch

func (h pendingHeap) Len() int           { return len(h) }
func (h pendingHeap) Less(i, j int) bool { return h[i].sealTS < h[j].sealTS }
func (h pendingHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)        { *h = append(*h, x.(pendingMatch)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	old[n-1] = pendingMatch{}
	*h = old[:n-1]
	return out
}
