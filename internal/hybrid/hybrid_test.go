package hybrid

import (
	"testing"

	"oostream/internal/adaptive"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/obsv"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// staticCtrl builds a controller that never resizes: effective K stays
// pinned at k (the hybrid equivalent of a static-K engine).
func staticCtrl(t *testing.T, k event.Time) *adaptive.Controller {
	t.Helper()
	ctrl, err := adaptive.NewController(adaptive.Config{InitialK: k})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

var testQueries = []string{
	"PATTERN SEQ(A a, B b) WITHIN 50",
	"PATTERN SEQ(A a, B b, C c) WITHIN 80",
	"PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100",
	"PATTERN SEQ(A a, !(N n), B b) WHERE a.id = n.id WITHIN 60",
	"PATTERN SEQ(!(N n), A a, B b) WITHIN 60",
	"PATTERN SEQ(A a, B b, !(N n)) WITHIN 40",
	"PATTERN SEQ(T a, T b) WITHIN 30",
}

var testTypes = []string{"A", "B", "C", "N", "T"}

// TestForcedSwitchesOracle is the hybrid's core correctness claim: with a
// static bound dominating the stream's disorder, the net output across any
// number of strategy switches equals the oracle on the sorted stream —
// from either starting mode, with switches forced at arbitrary points.
func TestForcedSwitchesOracle(t *testing.T) {
	for _, q := range testQueries {
		p := compile(t, q)
		for seed := int64(0); seed < 5; seed++ {
			sorted := gen.Uniform(180, testTypes, 3, 6, seed)
			k := event.Time(40)
			shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.4, MaxDelay: k, Seed: seed + 7})
			want := oracle.Matches(p, sorted)
			for _, startNative := range []bool{false, true} {
				en, err := New(p, Options{Controller: staticCtrl(t, k), StartNative: startNative})
				if err != nil {
					t.Fatal(err)
				}
				var got []plan.Match
				for i, e := range shuffled {
					got = append(got, en.Process(e)...)
					if i == len(shuffled)/3 || i == 2*len(shuffled)/3 {
						got = append(got, en.ForceSwitch()...)
					}
				}
				got = append(got, en.Flush()...)
				if en.Switches() != 2 {
					t.Fatalf("%s seed %d: expected 2 switches, got %d", q, seed, en.Switches())
				}
				if ok, diff := plan.SameResults(want, got); !ok {
					t.Fatalf("%s seed %d startNative=%v: hybrid != oracle (%d truth):\n%s",
						q, seed, startNative, len(want), diff)
				}
			}
		}
	}
}

// TestSwitchEveryEvent is the adversarial cadence: a switch after every
// single event must still converge to the oracle.
func TestSwitchEveryEvent(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 60")
	sorted := gen.Uniform(80, []string{"A", "B", "N"}, 2, 5, 3)
	k := event.Time(30)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.5, MaxDelay: k, Seed: 11})
	want := oracle.Matches(p, sorted)
	en, err := New(p, Options{Controller: staticCtrl(t, k)})
	if err != nil {
		t.Fatal(err)
	}
	var got []plan.Match
	for _, e := range shuffled {
		got = append(got, en.Process(e)...)
		got = append(got, en.ForceSwitch()...)
	}
	got = append(got, en.Flush()...)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("hybrid != oracle under per-event switching:\n%s", diff)
	}
}

// TestAutoSwitchOnLatencySLO: the nominal K crossing SLO.MaxLatency must
// drive the engine to native; K shrinking under half the target brings it
// back to speculation.
func TestAutoSwitchOnLatencySLO(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	ctrl, err := adaptive.NewController(adaptive.Config{
		InitialK:      10,
		DecisionEvery: 16,
		SLO:           adaptive.SLO{MaxLatency: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(p, Options{Controller: ctrl, MinDwell: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := event.Time(0)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			ts += 2
			typ := "A"
			if i%2 == 1 {
				typ = "B"
			}
			en.Process(event.Event{Type: typ, TS: ts, Seq: event.Seq(ts)})
		}
	}
	feed(40)
	if en.Mode() != ModeSpeculate {
		t.Fatalf("low K should stay speculative, mode %q", en.Mode())
	}
	ctrl.SetK(200) // disorder bound beyond the latency SLO
	feed(40)
	if en.Mode() != ModeNative {
		t.Fatalf("K=200 > MaxLatency=100 should switch to native, mode %q (switches %d)", en.Mode(), en.Switches())
	}
	ctrl.SetK(30) // well under MaxLatency/2
	feed(40)
	if en.Mode() != ModeSpeculate {
		t.Fatalf("K=30 <= MaxLatency/2 should switch back, mode %q", en.Mode())
	}
	if en.Switches() < 2 {
		t.Fatalf("expected at least 2 switches, got %d", en.Switches())
	}
}

// TestAutoSwitchOnRetractionRate: a stream whose negatives chronically
// arrive after the matches they invalidate makes speculation churn; the
// retraction-rate SLO must force native mode, and the net output must
// still equal the oracle.
func TestAutoSwitchOnRetractionRate(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 60")
	ctrl, err := adaptive.NewController(adaptive.Config{
		InitialK:      50,
		DecisionEvery: 30,
		SLO:           adaptive.SLO{MaxRetractionRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(p, Options{Controller: ctrl, MinDwell: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Triples A(t), B(t+2), then N(t+1) arriving late: every triple emits a
	// speculative match and retracts it — a 1/3 retraction rate.
	var arrival, sorted []event.Event
	seq := event.Seq(0)
	mk := func(typ string, ts event.Time) event.Event {
		seq++
		return event.Event{Type: typ, TS: ts, Seq: seq}
	}
	for i := 0; i < 60; i++ {
		t0 := event.Time(i * 10)
		a, b, n := mk("A", t0), mk("B", t0+2), mk("N", t0+1)
		arrival = append(arrival, a, b, n)
	}
	sorted = append(sorted, arrival...)
	event.SortByTime(sorted)
	var got []plan.Match
	for _, e := range arrival {
		got = append(got, en.Process(e)...)
	}
	got = append(got, en.Flush()...)
	if en.Mode() != ModeNative {
		t.Fatalf("33%% retraction rate should have switched to native, mode %q (switches %d)", en.Mode(), en.Switches())
	}
	if en.Switches() == 0 {
		t.Fatal("expected at least one switch")
	}
	want := oracle.Matches(p, sorted)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("net output != oracle across the auto-switch (%d truth):\n%s", len(want), diff)
	}
}

// TestDegradationSheds: when the state limit trips, the controller clamps
// the effective K, the frontier jumps, and arrivals between the clamped
// and nominal bounds are shed (counted, traced), not silently lost.
func TestDegradationSheds(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 1000")
	ctrl, err := adaptive.NewController(adaptive.Config{
		InitialK: 500,
		MinK:     1,
		Limits:   adaptive.Limits{MaxBufferedEvents: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(p, Options{Controller: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	var shedTraced int
	en.Observe(nil, obsv.TraceFunc(func(te obsv.TraceEvent) {
		if te.Op == obsv.OpShed {
			shedTraced++
		}
	}))
	// In-order As blow past the state limit (WITHIN 1000 keeps them all
	// live), engaging degradation; then OOO events inside the nominal bound
	// but behind the clamped frontier arrive and must be shed.
	ts := event.Time(0)
	for i := 0; i < 60; i++ {
		ts += 10
		en.Process(event.Event{Type: "A", TS: ts, Seq: event.Seq(i)})
	}
	if !ctrl.Degraded() {
		t.Fatalf("state %d over limit 20 should degrade", en.StateSize())
	}
	for i := 0; i < 5; i++ {
		// Lag 100: within nominal K=500, behind the degraded frontier.
		en.Process(event.Event{Type: "B", TS: ts - 100, Seq: event.Seq(1000 + i)})
	}
	m := en.Metrics()
	if m.SheddedEvents == 0 {
		t.Fatal("expected shed events under degradation")
	}
	if int(m.SheddedEvents) != shedTraced {
		t.Fatalf("counter %d != traced sheds %d", m.SheddedEvents, shedTraced)
	}
	snap := en.StateSnapshot()
	if snap.Adaptive == nil || snap.Adaptive.Shedded != m.SheddedEvents || !snap.Adaptive.Degraded {
		t.Fatalf("snapshot adaptive block inconsistent: %+v", snap.Adaptive)
	}
	if snap.Adaptive.Mode != ModeSpeculate {
		t.Fatalf("snapshot mode %q", snap.Adaptive.Mode)
	}
}

// TestTailBounded: the replay tail must track the frontier, not the whole
// stream.
func TestTailBounded(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 20")
	en, err := New(p, Options{Controller: staticCtrl(t, 10)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		typ := "A"
		if i%2 == 1 {
			typ = "B"
		}
		en.Process(event.Event{Type: typ, TS: event.Time(i), Seq: event.Seq(i)})
	}
	// Horizon is frontier − 2·Window = clock − K − 2W = 50 ticks of events,
	// plus trim hysteresis (compaction waits for a 64-event dead prefix).
	if len(en.tail) > 50+65 {
		t.Fatalf("tail grew to %d events, want bounded near 50", len(en.tail))
	}
}

// TestHeartbeatRelay: Advance must seal pending native output through the
// meta-engine.
func TestHeartbeatRelay(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b, !(N n)) WITHIN 40")
	en, err := New(p, Options{Controller: staticCtrl(t, 30), StartNative: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []plan.Match
	got = append(got, en.Process(event.Event{Type: "A", TS: 10, Seq: 1})...)
	got = append(got, en.Process(event.Event{Type: "B", TS: 20, Seq: 2})...)
	if len(got) != 0 {
		t.Fatalf("trailing negation gap unsealed, yet %d matches emitted", len(got))
	}
	// Heartbeat to 10+40+30+1: frontier passes the gap end (first+W=50).
	got = append(got, en.Advance(81)...)
	if len(got) != 1 {
		t.Fatalf("heartbeat should seal exactly 1 match, got %d", len(got))
	}
	if got[0].EmitClock != 81 {
		t.Fatalf("relayed match not restamped: EmitClock %d", got[0].EmitClock)
	}
}

// TestSwitchTraceAndMetrics: a forced switch must bump the counter and
// emit OpSwitch with the target mode and the sealed cut.
func TestSwitchTraceAndMetrics(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	en, err := New(p, Options{Controller: staticCtrl(t, 10)})
	if err != nil {
		t.Fatal(err)
	}
	var switchTE *obsv.TraceEvent
	en.Observe(nil, obsv.TraceFunc(func(te obsv.TraceEvent) {
		if te.Op == obsv.OpSwitch {
			cp := te
			switchTE = &cp
		}
	}))
	en.Process(event.Event{Type: "A", TS: 100, Seq: 1})
	en.ForceSwitch()
	if en.Mode() != ModeNative {
		t.Fatalf("mode %q after forced switch", en.Mode())
	}
	if switchTE == nil {
		t.Fatal("no OpSwitch trace event")
	}
	if switchTE.Type != ModeNative || switchTE.TS != 90 {
		t.Fatalf("OpSwitch = %+v, want target native at cut 90", switchTE)
	}
	if en.Metrics().Switches != 1 {
		t.Fatalf("metrics switches = %d", en.Metrics().Switches)
	}
	// And back.
	en.ForceSwitch()
	if en.Mode() != ModeSpeculate || en.Switches() != 2 {
		t.Fatalf("mode %q switches %d", en.Mode(), en.Switches())
	}
}

// TestRequiresController: construction without a controller must fail.
func TestRequiresController(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 50")
	if _, err := New(p, Options{}); err == nil {
		t.Fatal("expected error for nil controller")
	}
}

// TestDrainMatchesOracleNoSwitch sanity-checks both pure modes through the
// meta-engine (no switch at all): each must equal the oracle on its own.
func TestDrainMatchesOracleNoSwitch(t *testing.T) {
	for _, q := range testQueries {
		p := compile(t, q)
		sorted := gen.Uniform(150, testTypes, 3, 6, 21)
		k := event.Time(40)
		shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: k, Seed: 5})
		want := oracle.Matches(p, sorted)
		for _, startNative := range []bool{false, true} {
			en, err := New(p, Options{Controller: staticCtrl(t, k), StartNative: startNative})
			if err != nil {
				t.Fatal(err)
			}
			got := engine.Drain(en, shuffled)
			if ok, diff := plan.SameResults(want, got); !ok {
				t.Fatalf("%s startNative=%v: hybrid != oracle:\n%s", q, startNative, diff)
			}
		}
	}
}
