// Package hybrid implements the SLO-driven meta-engine: it runs ONE of the
// two out-of-order strategies at a time — speculative emission (low latency,
// revisable output) or native sealing (final output, bounded by K) — and
// switches between them at sealed watermarks as the stream's disorder and
// the configured service-level objectives demand.
//
// The meta-engine owns the adaptive controller (it feeds lag observations
// and state sizes; sub-engines are read-only followers) and performs
// admission itself against a monotone safe frontier F = max over history of
// (clock − effective K). Everything below F at arrival is dropped (late) or
// shed (degradation), exactly as in the adaptive native engine; sub-engines
// therefore never see a bound-violating event — their own follower
// frontiers trail F, so they never drop an admitted one either.
//
// # Switch protocol
//
// A switch hands off at the cut C = F, the sealed watermark: no event below
// C will ever be admitted again, so output attributable at or below C is
// final. The hybrid keeps a sorted tail of every admitted relevant event
// with timestamp above F − 2·Window — by the purge-horizon argument
// (GapBounds caps a match's seal at first.TS + Window, and a gap reaches at
// most Window below its first element) the tail contains every constituent,
// positive or negative, of any match whose seal lies above C. The switch:
//
//  1. settles the outgoing engine at the cut — native is driven to
//     Advance(C + K), pushing its follower frontier exactly to C and
//     draining every pending match sealing at or below C (final results
//     that must not be lost); speculate is asked to RetractVulnerable(C),
//     withdrawing emissions sealing above C (they will be re-derived);
//  2. discards the old engine and builds a fresh follower of the target
//     strategy;
//  3. replays the tail (already sorted, so the replay is an in-order
//     stream the follower admits in full) and advances the newcomer to the
//     hybrid clock, SUPPRESSING every replayed match — Insert or Retract —
//     whose recomputed seal is at or below C: those were already emitted
//     (or compensated) by the outgoing engine as finals.
//
// A post-replay retraction at or below C is impossible: the invalidating
// negative would carry a timestamp strictly below its gap's hi ≤ C = F and
// be dropped at hybrid admission. Net output across any number of switches
// therefore stays exactly the sealed-stream result over the admitted
// events — the differential harness enforces this against the oracle.
package hybrid

import (
	"fmt"
	"sort"

	"oostream/internal/adaptive"
	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
	"oostream/internal/speculate"
)

// Mode names the strategy currently running inside the meta-engine.
const (
	ModeSpeculate = "speculate"
	ModeNative    = "native"
)

// Options configure the hybrid meta-engine.
type Options struct {
	// Controller derives the dynamic K and carries the SLO targets and
	// degradation limits. Required; the hybrid feeds it (owner role), so it
	// must not be fed by anyone else.
	Controller *adaptive.Controller
	// PurgeEvery passes through to the sub-engines (0 = their default).
	PurgeEvery int
	// StartNative starts in native mode instead of the default speculative
	// mode (for streams known to open with heavy disorder).
	StartNative bool
	// MinDwell is the minimum number of controller decision windows between
	// automatic switches, damping oscillation. 0 selects the default (2).
	MinDwell int
}

const defaultMinDwell = 2

// fallbackOOORate is the native→speculate threshold on the windowed
// out-of-order fraction, used when SLO.MaxLatency is unset: with almost no
// disorder, speculation retracts almost nothing, so its latency win is free.
const fallbackOOORate = 0.01

const minTime = event.Time(-1 << 62)

// Engine is the switching meta-engine. It implements the same interface
// set as the engines it wraps, except Checkpointer.
type Engine struct {
	plan *plan.Plan
	opts Options
	ctrl *adaptive.Controller

	mode string
	// Exactly one of nat/spec is non-nil: the running sub-engine.
	nat  *core.Engine
	spec *speculate.Engine

	clock   event.Time
	started bool
	// frontier is the monotone safe frontier (see package comment); it is
	// also every switch's cut.
	frontier event.Time
	// tail holds the admitted relevant events with TS > frontier − 2·Window,
	// sorted by (TS, Seq): the replay source for switches.
	tail []event.Event

	arrival  uint64
	shedded  uint64
	switches uint64
	// Decision-window counters, reset every DecisionEvery admissions.
	winN       int
	winOOO     int
	winRetract int
	sinceWin   int
	dwell      int

	met       metrics.Collector
	trace     obsv.TraceHook
	traceName string
	prov      bool
	// lat, when non-nil, stamps wall-clock stage boundaries on sampled
	// spans. The meta-engine stamps StageConstruct itself (covering the
	// sub-engine feed); the sampler is not forwarded to sub-engines, so
	// switch-time tail replays cannot double-stamp live spans.
	lat *obsv.LatencySampler
}

var (
	_ engine.Engine         = (*Engine)(nil)
	_ engine.BatchProcessor = (*Engine)(nil)
	_ engine.Advancer       = (*Engine)(nil)
	_ engine.Observable     = (*Engine)(nil)
	_ engine.Provenancer    = (*Engine)(nil)
	_ engine.Introspectable = (*Engine)(nil)
)

// New builds a hybrid meta-engine starting in speculative mode (or native
// with opts.StartNative).
func New(p *plan.Plan, opts Options) (*Engine, error) {
	if opts.Controller == nil {
		return nil, fmt.Errorf("hybrid engine requires an adaptive controller")
	}
	if opts.MinDwell == 0 {
		opts.MinDwell = defaultMinDwell
	}
	if opts.MinDwell < 0 {
		return nil, fmt.Errorf("MinDwell must be >= 0, got %d", opts.MinDwell)
	}
	en := &Engine{plan: p, opts: opts, ctrl: opts.Controller, frontier: minTime}
	mode := ModeSpeculate
	if opts.StartNative {
		mode = ModeNative
	}
	if err := en.buildSub(mode); err != nil {
		return nil, err
	}
	return en, nil
}

// buildSub replaces the running sub-engine with a fresh follower of the
// given mode. The sub reads the shared controller (dynamic K) but never
// feeds it — the hybrid is the owner.
func (en *Engine) buildSub(mode string) error {
	switch mode {
	case ModeNative:
		nat, err := core.New(en.plan, core.Options{Adaptive: en.ctrl, PurgeEvery: en.opts.PurgeEvery})
		if err != nil {
			return err
		}
		en.nat, en.spec = nat, nil
	case ModeSpeculate:
		sp, err := speculate.New(en.plan, speculate.Options{Adaptive: en.ctrl, PurgeEvery: en.opts.PurgeEvery})
		if err != nil {
			return err
		}
		en.nat, en.spec = nil, sp
	default:
		return fmt.Errorf("unknown hybrid mode %q", mode)
	}
	en.mode = mode
	if en.prov {
		en.subEngine().(engine.Provenancer).EnableProvenance()
	}
	return nil
}

func (en *Engine) subEngine() engine.Engine {
	if en.nat != nil {
		return en.nat
	}
	return en.spec
}

func (en *Engine) subAdvance(ts event.Time) []plan.Match {
	if en.nat != nil {
		return en.nat.Advance(ts)
	}
	return en.spec.Advance(ts)
}

// Name implements engine.Engine.
func (en *Engine) Name() string { return "hybrid" }

// Mode returns the strategy currently running inside the meta-engine.
func (en *Engine) Mode() string { return en.mode }

// SetLatencySampler implements engine.LatencySampled (see the lat field).
func (en *Engine) SetLatencySampler(ls *obsv.LatencySampler) { en.lat = ls }

// Switches returns how many strategy switches have happened.
func (en *Engine) Switches() uint64 { return en.switches }

// Observe implements engine.Observable. The series and hook bind to the
// meta-engine itself; sub-engines keep their private collectors — their
// ingestion view restarts at every switch and would double-report.
func (en *Engine) Observe(s *obsv.Series, hook obsv.TraceHook) {
	en.met.Bind(s)
	en.trace = hook
	if s != nil && s.Name() != "" {
		en.traceName = s.Name()
	} else if en.traceName == "" {
		en.traceName = en.Name()
	}
}

// EnableProvenance implements engine.Provenancer, forwarding to the running
// sub-engine (and to every future one built at a switch).
func (en *Engine) EnableProvenance() {
	en.prov = true
	en.subEngine().(engine.Provenancer).EnableProvenance()
}

// StateSize implements engine.Engine: the replay tail plus the running
// sub-engine's state.
func (en *Engine) StateSize() int { return len(en.tail) + en.subEngine().StateSize() }

// advanceFrontier folds the controller's current effective K into the
// monotone frontier, exactly as the adaptive native engine does.
func (en *Engine) advanceFrontier() {
	if !en.started {
		return
	}
	if cand := en.clock - en.ctrl.EffectiveK(); cand > en.frontier {
		en.frontier = cand
	}
}

// Process implements engine.Engine.
func (en *Engine) Process(e event.Event) []plan.Match {
	out := en.processOne(e, nil)
	en.publish()
	return out
}

// ProcessBatch implements engine.BatchProcessor: the full per-event
// pipeline (admission, sub-engine feed, switch decisions) runs for every
// event; only gauge publication is deferred to the batch boundary.
func (en *Engine) ProcessBatch(batch []event.Event) []plan.Match {
	var out []plan.Match
	for i := range batch {
		out = en.processOne(batch[i], out)
	}
	en.publish()
	return out
}

func (en *Engine) publish() {
	en.met.SetLiveState(en.StateSize())
	en.met.SetCurrentK(en.ctrl.EffectiveK())
	en.met.SetDegraded(en.ctrl.Degraded())
}

// processOne admits one event against the frontier, feeds it to the
// running sub-engine, and runs the switch policy at decision-window
// boundaries.
func (en *Engine) processOne(e event.Event, out []plan.Match) []plan.Match {
	en.arrival++
	if !en.plan.Relevant(e.Type) {
		en.met.IncIrrelevant()
		return out
	}
	isOOO := en.started && e.TS < en.clock
	var lag event.Time
	if isOOO {
		lag = en.clock - e.TS
	}
	en.met.IncIn(isOOO, lag)
	// The hybrid is the controller's owner: same observation point as
	// Series.WatermarkLag, bound violators included.
	en.ctrl.ObserveLag(lag)
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpAdmit, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
	}
	// Sample the frontier before the late check so every admitted event is
	// provably within the current effective K of the clock.
	en.advanceFrontier()
	if en.started && e.TS < en.frontier {
		if en.ctrl.Degraded() && e.TS >= en.clock-en.ctrl.NominalK() {
			en.shedded++
			en.met.IncShedded()
			en.lat.Abandon(e.Seq)
			if en.trace != nil {
				en.trace.Trace(obsv.TraceEvent{Op: obsv.OpShed, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
			}
			return out
		}
		en.met.IncLate()
		en.lat.Abandon(e.Seq)
		if en.trace != nil {
			en.trace.Trace(obsv.TraceEvent{Op: obsv.OpDrop, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
		}
		return out
	}
	if e.TS > en.clock || !en.started {
		en.clock = e.TS
		en.started = true
		en.advanceFrontier()
	}
	en.tailInsert(e)
	out = en.relay(en.subEngine().Process(e), out)
	en.lat.StageEnd(e.Seq, obsv.StageConstruct)
	en.tailTrim()
	// Degradation watches the meta-engine's total state (replay tail plus
	// sub-engine); when the limit trips, the clamped effective K pulls the
	// frontier forward, shedding at admission and shortening the tail.
	en.ctrl.NoteState(en.StateSize())
	en.winN++
	if isOOO {
		en.winOOO++
	}
	en.sinceWin++
	if en.sinceWin >= en.ctrl.Config().DecisionEvery {
		en.sinceWin = 0
		out = en.maybeSwitch(out)
	}
	return out
}

// tailInsert places an admitted event at its sorted position in the replay
// tail.
func (en *Engine) tailInsert(e event.Event) {
	i := sort.Search(len(en.tail), func(i int) bool {
		return e.Before(en.tail[i])
	})
	en.tail = append(en.tail, event.Event{})
	copy(en.tail[i+1:], en.tail[i:])
	en.tail[i] = e
}

// tailTrim drops tail events at or below frontier − 2·Window (no future
// match with an unsealed gap can involve them; see the package comment).
// The copy is amortized by only compacting once the dead prefix is large.
func (en *Engine) tailTrim() {
	if !en.started {
		return
	}
	cut := en.frontier - 2*en.plan.Window
	i := sort.Search(len(en.tail), func(i int) bool { return en.tail[i].TS > cut })
	if i >= 64 || (i > 0 && i >= len(en.tail)/2) {
		n := copy(en.tail, en.tail[i:])
		en.tail = en.tail[:n]
	}
}

// relay restamps sub-engine (or handoff) matches to the hybrid's clock and
// arrival counter, records them in the meta-engine's collector, and counts
// retractions toward the current decision window.
func (en *Engine) relay(ms []plan.Match, out []plan.Match) []plan.Match {
	for i := range ms {
		out = append(out, en.relayOne(ms[i]))
	}
	return out
}

func (en *Engine) relayOne(m plan.Match) plan.Match {
	m.EmitClock = en.clock
	m.EmitSeq = event.Seq(en.arrival)
	if m.Prov != nil {
		m.Prov.EmitClock = en.clock
	}
	retract := m.Kind == plan.Retract
	if retract {
		en.winRetract++
	}
	en.met.AddMatch(retract, en.clock-m.Last().TS, 0)
	if en.trace != nil {
		op := obsv.OpEmit
		if retract {
			op = obsv.OpRetract
		}
		te := obsv.TraceEvent{Op: op, Engine: en.traceName, TS: m.Last().TS, Seq: m.EmitSeq, N: len(m.Events)}
		if m.Prov != nil {
			te.Match = m.Prov.MatchKey()
		}
		en.trace.Trace(te)
	}
	return m
}

// sealOf recomputes a match's seal timestamp from its binding: the max gap
// hi over the plan's negations, minTime when there are none (such matches
// seal immediately).
func (en *Engine) sealOf(m plan.Match) event.Time {
	seal := minTime
	for i := range en.plan.Negatives {
		if _, hi := en.plan.GapBounds(i, m.Events); hi > seal {
			seal = hi
		}
	}
	return seal
}

// maybeSwitch evaluates the SLO policy at a decision-window boundary.
func (en *Engine) maybeSwitch(out []plan.Match) []plan.Match {
	en.dwell++
	n := en.winN
	retRate := float64(en.winRetract) / float64(max(n, 1))
	oooRate := float64(en.winOOO) / float64(max(n, 1))
	en.winN, en.winOOO, en.winRetract = 0, 0, 0
	if en.dwell < en.opts.MinDwell || n == 0 {
		return out
	}
	slo := en.ctrl.SLO()
	nomK := en.ctrl.NominalK()
	switch en.mode {
	case ModeSpeculate:
		// Speculation is violating the SLO when its revision churn exceeds
		// the tolerated retraction rate, or when the disorder bound has grown
		// past the latency target (each result stays revisable for ~K, so a
		// consumer waiting for finality pays more than MaxLatency).
		if (slo.MaxRetractionRate > 0 && retRate > slo.MaxRetractionRate) ||
			(slo.MaxLatency > 0 && nomK > slo.MaxLatency) {
			out = en.switchTo(ModeNative, out)
		}
	case ModeNative:
		// Native sealing delays every result by ~K; fall back to speculation
		// once K has shrunk well under the latency target (hysteresis: half),
		// or — with no latency target — once disorder is all but gone.
		if slo.MaxLatency > 0 {
			if nomK <= slo.MaxLatency/2 {
				out = en.switchTo(ModeSpeculate, out)
			}
		} else if oooRate <= fallbackOOORate && (slo.MaxRetractionRate > 0 || retRate == 0) {
			out = en.switchTo(ModeSpeculate, out)
		}
	}
	return out
}

// ForceSwitch immediately switches to the other strategy at the current
// frontier, returning the handoff emissions (drained finals or
// compensating retractions, plus any unsuppressed replay output). Test and
// operational hook; the differential harness uses it to force switches at
// chosen points.
func (en *Engine) ForceSwitch() []plan.Match {
	target := ModeNative
	if en.mode == ModeNative {
		target = ModeSpeculate
	}
	return en.switchTo(target, nil)
}

// switchTo performs the three-step handoff described in the package
// comment: settle the outgoing engine at the cut C = frontier, build a
// fresh follower, replay the tail suppressing matches sealed at or below C.
func (en *Engine) switchTo(target string, out []plan.Match) []plan.Match {
	// Refresh the frontier first: degradation (NoteState) may have clamped
	// the effective K since the last fold, and the settle step below relies
	// on clock ≤ cut + effective K to land the outgoing engine's frontier
	// exactly on the cut — overshooting would drain pendings above the cut
	// that the replay then re-derives as duplicates.
	en.advanceFrontier()
	cut := en.frontier
	if en.started {
		if en.nat != nil {
			// Drive the outgoing native engine's follower frontier exactly to
			// the cut: clock C+K minus effective K. Pending matches sealing at
			// or below C drain here — they are final results the replay will
			// suppress, so losing them is not an option. Pendings above C die
			// with the engine and are re-derived from the tail.
			out = en.relay(en.nat.Advance(cut+en.ctrl.EffectiveK()), out)
		} else {
			// Withdraw speculative emissions still sealing above the cut; the
			// replay re-derives whichever of them still hold. Entries at or
			// below the cut are final and stay emitted.
			out = en.relay(en.spec.RetractVulnerable(cut), out)
		}
	}
	if err := en.buildSub(target); err != nil {
		// Unreachable: the same options built an engine at construction time.
		panic(fmt.Sprintf("hybrid: rebuilding %s sub-engine: %v", target, err))
	}
	replayed := 0
	if en.started && len(en.tail) > 0 {
		// The tail is sorted, so the fresh follower admits it in full (an
		// in-order stream never trails its own frontier), then advances to
		// the hybrid clock — sealing, for native, everything up to the cut.
		ms := engine.ProcessBatch(en.subEngine(), en.tail)
		ms = append(ms, en.subAdvance(en.clock)...)
		replayed = len(en.tail)
		for i := range ms {
			if en.sealOf(ms[i]) <= cut {
				// Already emitted (and, if retracted, compensated) by the
				// outgoing engine as final output at or below the cut.
				continue
			}
			out = append(out, en.relayOne(ms[i]))
		}
	}
	en.switches++
	en.met.IncSwitch()
	en.dwell = 0
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpSwitch, Engine: en.traceName, Type: target, TS: cut, N: replayed})
	}
	return out
}

// Advance implements engine.Advancer: the heartbeat moves the hybrid clock
// and frontier, then passes through to the running sub-engine (draining,
// for native, newly sealed pendings).
func (en *Engine) Advance(ts event.Time) []plan.Match {
	if !en.started || ts > en.clock {
		en.clock = ts
		en.started = true
	}
	en.advanceFrontier()
	en.tailTrim()
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpHeartbeat, Engine: en.traceName, TS: ts})
	}
	out := en.relay(en.subAdvance(ts), nil)
	en.met.SetLiveState(en.StateSize())
	return out
}

// Flush implements engine.Engine: end of stream seals everything pending
// in the running sub-engine.
func (en *Engine) Flush() []plan.Match {
	out := en.relay(en.subEngine().Flush(), nil)
	en.tail = nil
	en.met.SetLiveState(en.StateSize())
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpFlush, Engine: en.traceName, TS: en.clock})
	}
	return out
}

// Metrics implements engine.Engine: ingestion, matches, and latency come
// from the meta-engine's collector (sub-engine views restart at switches);
// predicate-error and purge counters pass through from the running sub.
func (en *Engine) Metrics() metrics.Snapshot {
	outer := en.met.Snapshot()
	inner := en.subEngine().Metrics()
	outer.PredErrors = inner.PredErrors
	outer.Purged = inner.Purged
	outer.PurgeCalls = inner.PurgeCalls
	return outer
}

// StateSnapshot implements engine.Introspectable.
func (en *Engine) StateSnapshot() *provenance.StateSnapshot {
	name := en.traceName
	if name == "" {
		name = en.Name()
	}
	s := &provenance.StateSnapshot{
		Engine:    name,
		Started:   en.started,
		Clock:     en.clock,
		Safe:      en.frontier,
		BufferLen: len(en.tail),
		Lineage:   provenance.LineageStats{Enabled: en.prov},
	}
	cs := en.ctrl.Snapshot()
	s.Adaptive = &provenance.AdaptiveStats{
		Enabled:      cs.Enabled,
		EffectiveK:   cs.EffectiveK,
		NominalK:     cs.NominalK,
		MaxKObserved: cs.MaxKObserved,
		Degraded:     cs.Degraded,
		Shedded:      en.shedded,
		Resizes:      cs.Resizes,
		Mode:         en.mode,
		Switches:     en.switches,
	}
	if intr, ok := en.subEngine().(engine.Introspectable); ok {
		inner := intr.StateSnapshot()
		s.Inner = inner
		s.Lineage.Live = inner.Lineage.Live
		s.Lineage.Bytes = inner.Lineage.Bytes
		s.Lineage.Truncated = inner.Lineage.Truncated
	}
	return s
}
