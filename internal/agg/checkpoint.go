package agg

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/fiba"
	"oostream/internal/plan"
)

// Checkpoint envelope, following the internal/core layout:
//
//	magic   [6]byte  "OOAGGT"
//	version byte     aggEnvelopeVersion
//	length  uint32le payload byte count
//	crc     uint32le CRC32 (IEEE) of the payload
//	payload []byte   JSON aggCheckpoint
//	inner   []byte   the wrapped engine's own checkpoint stream
//
// The inner engine's checkpoint follows the envelope verbatim; Restore
// hands the remainder of the reader to the inner restore function.
var aggMagic = [6]byte{'O', 'O', 'A', 'G', 'G', 'T'}

const aggEnvelopeVersion = 1

// aggCheckpoint is the serialized operator state. Only sealed mode is
// checkpointable: speculative previews are compensated state downstream
// consumers hold, which a restore cannot reconstruct.
type aggCheckpoint struct {
	// Lateness is the operator's disorder bound, persisted so a restore
	// needs only the plan and the byte stream (facade RestoreEngine has no
	// Config in scope).
	Lateness   event.Time `json:"lateness"`
	Clock      event.Time `json:"clock"`
	Arrival    uint64     `json:"arrival"`
	ElemSeq    uint64     `json:"elemSeq"`
	Sealed     event.Time `json:"sealed"`
	SealedInit bool       `json:"sealedInit"`
	Groups     []ckGroup  `json:"groups"`
}

// ckGroup is one key group: its GROUP BY value (absent when the query is
// ungrouped) and its elements in ascending key order, so the restore
// rebuilds each tree with O(1) in-order appends.
type ckGroup struct {
	Key   *event.Value `json:"key,omitempty"`
	Elems []ckElem     `json:"elems"`
}

// ckElem is one tree element. Min/Max are pointers because the zero
// event.Value is invalid and refuses to marshal (COUNT partials carry no
// values).
type ckElem struct {
	TS     event.Time   `json:"ts"`
	Seq    uint64       `json:"seq"`
	Count  int64        `json:"count"`
	SumI   int64        `json:"sumI,omitempty"`
	SumF   float64      `json:"sumF,omitempty"`
	Min    *event.Value `json:"min,omitempty"`
	Max    *event.Value `json:"max,omitempty"`
	Floaty bool         `json:"floaty,omitempty"`
	Match  string       `json:"match"`
}

// Checkpoint implements engine.Checkpointer for sealed-mode operators over
// a checkpointable inner engine.
func (en *Engine) Checkpoint(w io.Writer) error {
	if en.speculative {
		return fmt.Errorf("agg: speculative aggregation does not support checkpointing")
	}
	ck, ok := en.inner.(engine.Checkpointer)
	if !ok {
		return fmt.Errorf("agg: inner engine %q does not support checkpointing", en.inner.Name())
	}
	cf := aggCheckpoint{
		Lateness:   en.lateness,
		Clock:      en.clock,
		Arrival:    en.arrival,
		ElemSeq:    en.elemSeq,
		Sealed:     en.sealed,
		SealedInit: en.sealedInit,
		Groups:     make([]ckGroup, 0, len(en.order)),
	}
	for _, gk := range en.order {
		g := en.groups[gk]
		cg := ckGroup{Elems: make([]ckElem, 0, g.tree.Size())}
		if g.has {
			key := g.key
			cg.Key = &key
		}
		g.tree.All(func(k fiba.Key, p fiba.Partial, aux any) bool {
			cg.Elems = append(cg.Elems, ckElem{
				TS:     k.TS,
				Seq:    k.Seq,
				Count:  p.Count,
				SumI:   p.SumI,
				SumF:   p.SumF,
				Min:    optVal(p.Min),
				Max:    optVal(p.Max),
				Floaty: p.Floaty,
				Match:  aux.(*elemAux).matchKey,
			})
			return true
		})
		cf.Groups = append(cf.Groups, cg)
	}
	payload, err := json.Marshal(&cf)
	if err != nil {
		return err
	}
	var hdr [15]byte
	copy(hdr[:6], aggMagic[:])
	hdr[6] = aggEnvelopeVersion
	binary.LittleEndian.PutUint32(hdr[7:11], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[11:15], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return ck.Checkpoint(w)
}

// Restore rebuilds a sealed-mode operator from a checkpoint. p must be the
// same compiled plan the checkpointed engine ran with (the lateness bound
// travels in the checkpoint); restoreInner consumes the remainder of the
// stream and rebuilds the wrapped engine. Lineage citations are not
// checkpointed: records emitted for restored elements carry Truncated.
func Restore(p *plan.Plan, r io.Reader, restoreInner func(io.Reader) (engine.Engine, error)) (*Engine, error) {
	var hdr [15]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("agg: checkpoint header truncated: %w", err)
	}
	if [6]byte(hdr[:6]) != aggMagic {
		return nil, fmt.Errorf("agg: bad checkpoint magic %q", hdr[:6])
	}
	if hdr[6] != aggEnvelopeVersion {
		return nil, fmt.Errorf("agg: checkpoint envelope version %d, want %d", hdr[6], aggEnvelopeVersion)
	}
	size := binary.LittleEndian.Uint32(hdr[7:11])
	want := binary.LittleEndian.Uint32(hdr[11:15])
	payload := make([]byte, size)
	if n, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("agg: checkpoint truncated: want %d payload bytes, got %d", size, n)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("agg: checkpoint corrupt: CRC32 %08x, want %08x", got, want)
	}
	var cf aggCheckpoint
	if err := json.Unmarshal(payload, &cf); err != nil {
		return nil, fmt.Errorf("agg: decode checkpoint: %w", err)
	}
	inner, err := restoreInner(r)
	if err != nil {
		return nil, err
	}
	en := New(p, inner, false, cf.Lateness)
	en.clock = cf.Clock
	en.arrival = cf.Arrival
	en.elemSeq = cf.ElemSeq
	en.sealed = cf.Sealed
	en.sealedInit = cf.SealedInit
	for _, cg := range cf.Groups {
		var gk event.Value
		g := &group{tree: fiba.New(), has: cg.Key != nil}
		if cg.Key != nil {
			g.key = *cg.Key
			gk = g.key.MapKey()
		}
		for _, ce := range cg.Elems {
			part := fiba.Partial{
				Count:  ce.Count,
				SumI:   ce.SumI,
				SumF:   ce.SumF,
				Floaty: ce.Floaty,
			}
			if ce.Min != nil {
				part.Min = *ce.Min
			}
			if ce.Max != nil {
				part.Max = *ce.Max
			}
			key := fiba.Key{TS: ce.TS, Seq: ce.Seq}
			g.tree.Insert(key, part, &elemAux{matchKey: ce.Match})
			en.byMatch[ce.Match] = elemRef{group: gk, key: key}
		}
		en.groups[gk] = g
		en.order = append(en.order, gk)
	}
	return en, nil
}

// optVal boxes a value for the wire, eliding the invalid zero value
// (whose MarshalJSON fails by design).
func optVal(v event.Value) *event.Value {
	if !v.Valid() {
		return nil
	}
	c := v
	return &c
}
