package agg

import (
	"bytes"
	"io"
	"math/rand"
	"sort"
	"testing"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/fiba"
	"oostream/internal/inorder"
	"oostream/internal/kslack"
	"oostream/internal/oracle"
	"oostream/internal/plan"
	"oostream/internal/speculate"
)

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	if p.Agg == nil {
		t.Fatalf("plan has no aggregate spec")
	}
	return p
}

func ev(typ string, ts event.Time, seq event.Seq, attrs event.Attrs) event.Event {
	return event.Event{Type: typ, TS: ts, Seq: seq, Attrs: attrs}
}

// expected computes the ground-truth aggregate matches: oracle pattern
// matches, bucketed into grid windows by brute force with the same spec
// helpers the operator uses.
func expected(t *testing.T, p *plan.Plan, events []event.Event) []plan.Match {
	t.Helper()
	spec := p.Agg
	type elem struct {
		ts    event.Time
		part  fiba.Partial
		group event.Value
	}
	var elems []elem
	for _, m := range oracle.Matches(p, events) {
		ts, part, g, ok := spec.ElementOf(m, nil)
		if !ok {
			continue
		}
		elems = append(elems, elem{ts, part, g})
	}
	endSet := map[event.Time]bool{}
	for _, el := range elems {
		for end := plan.AlignUp(el.ts, spec.Slide); end-p.Window < el.ts; end += spec.Slide {
			endSet[end] = true
		}
	}
	var ends []event.Time
	for end := range endSet {
		ends = append(ends, end)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })

	var out []plan.Match
	for _, end := range ends {
		// Group keys in first-contribution order.
		var keys []event.Value
		seen := map[event.Value]bool{}
		parts := map[event.Value]fiba.Partial{}
		for _, el := range elems {
			if el.ts <= end-p.Window || el.ts > end {
				continue
			}
			gk := event.Value{}
			if spec.GroupSlot >= 0 {
				gk = el.group.MapKey()
			}
			if !seen[gk] {
				seen[gk] = true
				keys = append(keys, gk)
			}
			parts[gk] = parts[gk].Merge(el.part)
		}
		for _, gk := range keys {
			v, n, ok := spec.Result(parts[gk])
			if !ok {
				continue
			}
			av := &plan.AggValue{
				Func:        string(spec.Func),
				WindowStart: end - p.Window,
				WindowEnd:   end,
				Group:       gk,
				HasGroup:    spec.GroupSlot >= 0,
				Value:       v,
				Count:       n,
			}
			if !spec.EvalHaving(av, nil) {
				continue
			}
			out = append(out, plan.Match{Kind: plan.Insert, Events: []event.Event{plan.WindowEvent(end)}, Agg: av})
		}
	}
	return out
}

// genStream produces a K-disordered A/B stream with int attrs v and id.
func genStream(rng *rand.Rand, n int, k event.Time) []event.Event {
	type keyed struct {
		e event.Event
		p event.Time
	}
	evs := make([]keyed, n)
	for i := 0; i < n; i++ {
		typ := "A"
		if rng.Intn(2) == 1 {
			typ = "B"
		}
		ts := event.Time(i * 4)
		e := ev(typ, ts, event.Seq(i+1), event.Attrs{
			"v":  event.Int(int64(rng.Intn(20))),
			"id": event.Int(int64(rng.Intn(3))),
		})
		p := ts
		if k > 0 {
			p += rng.Int63n(k)
		}
		evs[i] = keyed{e, p}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].p < evs[j].p })
	out := make([]event.Event, n)
	for i := range evs {
		out[i] = evs[i].e
	}
	return out
}

func TestSealedTumblingCount(t *testing.T) {
	p := compile(t, "AGGREGATE COUNT(*) OVER SEQ(A a, B b) WITHIN 100")
	en := New(p, core.MustNew(p, core.Options{K: 0}), false, 0)
	var events []event.Event
	// Two matches in (0,100], one in (100,200].
	for i, spec := range []struct {
		typ string
		ts  event.Time
	}{{"A", 10}, {"B", 20}, {"B", 30}, {"A", 150}, {"B", 160}, {"C", 500}} {
		events = append(events, ev(spec.typ, spec.ts, event.Seq(i+1), nil))
	}
	got := engine.Drain(en, events)
	want := expected(t, p, events)
	if len(want) == 0 {
		t.Fatalf("expected windows, oracle produced none")
	}
	if same, diff := plan.SameResults(got, want); !same {
		t.Fatalf("sealed tumbling COUNT diverges:\n%s", diff)
	}
	for _, m := range got {
		if m.Agg == nil {
			t.Fatalf("non-aggregate match emitted: %s", m)
		}
		if m.Kind != plan.Insert {
			t.Fatalf("sealed mode emitted a retraction: %s", m)
		}
	}
}

func TestSealedEmitsBeforeFlushUnderWatermark(t *testing.T) {
	p := compile(t, "AGGREGATE COUNT(*) OVER SEQ(A a, B b) WITHIN 100")
	en := New(p, core.MustNew(p, core.Options{K: 10}), false, 10)
	var pre []plan.Match
	pre = append(pre, en.Process(ev("A", 10, 1, nil))...)
	pre = append(pre, en.Process(ev("B", 20, 2, nil))...)
	if len(pre) != 0 {
		t.Fatalf("window emitted before it sealed: %v", pre)
	}
	// Clock 111 puts the watermark at 101 > end 100: the window seals.
	pre = append(pre, en.Process(ev("C", 111, 3, nil))...)
	if len(pre) != 1 || pre[0].Agg == nil || pre[0].Agg.WindowEnd != 100 {
		t.Fatalf("want one sealed window (end 100), got %v", pre)
	}
	if n := pre[0].Agg.Count; n != 1 {
		t.Fatalf("want count 1, got %d", n)
	}
	if rest := en.Flush(); len(rest) != 0 {
		t.Fatalf("flush re-emitted sealed state: %v", rest)
	}
}

func TestAdvanceSealsDuringSilence(t *testing.T) {
	p := compile(t, "AGGREGATE COUNT(*) OVER SEQ(A a, B b) WITHIN 100")
	en := New(p, core.MustNew(p, core.Options{K: 10}), false, 10)
	var out []plan.Match
	out = append(out, en.Process(ev("A", 10, 1, nil))...)
	out = append(out, en.Process(ev("B", 20, 2, nil))...)
	out = append(out, en.Advance(200)...)
	if len(out) != 1 || out[0].Agg == nil || out[0].Agg.WindowEnd != 100 {
		t.Fatalf("heartbeat did not seal the window: %v", out)
	}
}

func TestSpeculativePreviewAndRevision(t *testing.T) {
	p := compile(t, "AGGREGATE SUM(b.v) OVER SEQ(A a, B b) WITHIN 100")
	sp, err := speculate.New(p, speculate.Options{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	en := New(p, sp, true, 50)
	var out []plan.Match
	out = append(out, en.Process(ev("A", 10, 1, nil))...)
	out = append(out, en.Process(ev("B", 20, 2, event.Attrs{"v": event.Int(5)}))...)
	// Clock passes the window end: preview SUM=5.
	out = append(out, en.Process(ev("C", 120, 3, nil))...)
	if len(out) != 1 || out[0].Kind != plan.Insert || out[0].Agg == nil {
		t.Fatalf("want one preview, got %v", out)
	}
	if v, _ := out[0].Agg.Value.AsInt(); v != 5 {
		t.Fatalf("want SUM 5, got %s", out[0].Agg.Value)
	}
	// A late B at 30 (within K of clock 120) adds a new match: the
	// previewed window must be revised as retract(5) + insert(12).
	rev := en.Process(ev("B", 30, 4, event.Attrs{"v": event.Int(7)}))
	var kinds []plan.MatchKind
	for _, m := range rev {
		if m.Agg != nil && m.Agg.WindowEnd == 100 {
			kinds = append(kinds, m.Kind)
		}
	}
	if len(kinds) != 2 || kinds[0] != plan.Retract || kinds[1] != plan.Insert {
		t.Fatalf("want retract+insert revision, got %v", rev)
	}
	got := append(out, rev...)
	got = append(got, en.Flush()...)
	events := []event.Event{
		ev("A", 10, 1, nil),
		ev("B", 20, 2, event.Attrs{"v": event.Int(5)}),
		ev("C", 120, 3, nil),
		ev("B", 30, 4, event.Attrs{"v": event.Int(7)}),
	}
	if same, diff := plan.SameResults(got, expected(t, p, events)); !same {
		t.Fatalf("speculative net output diverges:\n%s", diff)
	}
	if en.Metrics().AggRevisions == 0 {
		t.Fatalf("revision not counted")
	}
}

func TestGroupedHaving(t *testing.T) {
	p := compile(t, "AGGREGATE SUM(b.v) OVER SEQ(A a, B b) WITHIN 100 GROUP BY b.id HAVING w.value >= 10")
	en := New(p, core.MustNew(p, core.Options{K: 0}), false, 0)
	events := []event.Event{
		ev("A", 10, 1, nil),
		ev("B", 20, 2, event.Attrs{"v": event.Int(12), "id": event.Int(1)}),
		ev("B", 30, 3, event.Attrs{"v": event.Int(3), "id": event.Int(2)}),
	}
	got := engine.Drain(en, events)
	want := expected(t, p, events)
	if same, diff := plan.SameResults(got, want); !same {
		t.Fatalf("grouped HAVING diverges:\n%s", diff)
	}
	for _, m := range got {
		if !m.Agg.HasGroup {
			t.Fatalf("group key missing on %s", m)
		}
		if v, _ := m.Agg.Value.AsInt(); v < 10 {
			t.Fatalf("HAVING passed %s", m)
		}
	}
	if len(got) == 0 {
		t.Fatalf("no window passed HAVING; want the id=1 group")
	}
}

// TestDifferentialVsOracle runs all aggregate-capable strategies over
// random K-disordered streams and checks each against the brute-force
// ground truth, for every aggregation function and a slide/group/having
// mix.
func TestDifferentialVsOracle(t *testing.T) {
	queries := []string{
		"AGGREGATE COUNT(*) OVER SEQ(A a, B b) WITHIN 60",
		"AGGREGATE SUM(b.v) OVER SEQ(A a, B b) WITHIN 80 SLIDE 40",
		"AGGREGATE AVG(a.v) OVER SEQ(A a, B b) WITHIN 60 SLIDE 20",
		"AGGREGATE MIN(b.v) OVER SEQ(A a, B b) WITHIN 80 GROUP BY a.id",
		"AGGREGATE MAX(b.v) OVER SEQ(A a, B b) WITHIN 80 SLIDE 40 HAVING w.count >= 2",
	}
	const k = event.Time(24)
	for qi, src := range queries {
		p := compile(t, src)
		for trial := 0; trial < 6; trial++ {
			rng := rand.New(rand.NewSource(int64(qi*100 + trial)))
			events := genStream(rng, 120, k)
			want := expected(t, p, events)
			engines := map[string]engine.Engine{
				"native": New(p, core.MustNew(p, core.Options{K: k}), false, k),
				"kslack": New(p, kslack.NewEngine(k, inorder.New(p)), false, k),
			}
			sp, err := speculate.New(p, speculate.Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			engines["speculate"] = New(p, sp, true, k)
			for name, en := range engines {
				got := engine.Drain(en, events)
				if same, diff := plan.SameResults(got, want); !same {
					t.Fatalf("%s diverges from oracle on %q trial %d:\n%s", name, src, trial, diff)
				}
			}
			// Batch path must equal the per-event path.
			bat := New(p, core.MustNew(p, core.Options{K: k}), false, k)
			got := bat.ProcessBatch(events)
			got = append(got, bat.Flush()...)
			if same, diff := plan.SameResults(got, want); !same {
				t.Fatalf("batch path diverges on %q trial %d:\n%s", src, trial, diff)
			}
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := "AGGREGATE SUM(b.v) OVER SEQ(A a, B b) WITHIN 80 SLIDE 40 GROUP BY a.id"
	p := compile(t, src)
	const k = event.Time(24)
	rng := rand.New(rand.NewSource(7))
	events := genStream(rng, 160, k)
	half := len(events) / 2

	ref := New(p, core.MustNew(p, core.Options{K: k}), false, k)
	var want []plan.Match
	for _, e := range events {
		want = append(want, ref.Process(e)...)
	}
	want = append(want, ref.Flush()...)

	en := New(p, core.MustNew(p, core.Options{K: k}), false, k)
	var got []plan.Match
	for _, e := range events[:half] {
		got = append(got, en.Process(e)...)
	}
	var buf bytes.Buffer
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	restored, err := Restore(p, &buf, func(r io.Reader) (engine.Engine, error) {
		return core.Restore(p, r)
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, e := range events[half:] {
		got = append(got, restored.Process(e)...)
	}
	got = append(got, restored.Flush()...)
	if same, diff := plan.SameResults(got, want); !same {
		t.Fatalf("restored run diverges from uninterrupted run:\n%s", diff)
	}
	if same, diff := plan.SameResults(got, expected(t, p, events)); !same {
		t.Fatalf("restored run diverges from oracle:\n%s", diff)
	}
}

func TestSpeculativeCheckpointRefused(t *testing.T) {
	p := compile(t, "AGGREGATE COUNT(*) OVER SEQ(A a, B b) WITHIN 100")
	sp, err := speculate.New(p, speculate.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	en := New(p, sp, true, 10)
	if err := en.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Fatalf("speculative checkpoint must be refused")
	}
}

func TestMetricsAndSnapshot(t *testing.T) {
	p := compile(t, "AGGREGATE COUNT(*) OVER SEQ(A a, B b) WITHIN 100 GROUP BY a.id")
	en := New(p, core.MustNew(p, core.Options{K: 10}), false, 10)
	en.EnableProvenance()
	var out []plan.Match
	out = append(out, en.Process(ev("A", 10, 1, event.Attrs{"id": event.Int(1)}))...)
	out = append(out, en.Process(ev("B", 20, 2, event.Attrs{"id": event.Int(1)}))...)
	out = append(out, en.Advance(300)...)
	if len(out) != 1 {
		t.Fatalf("want one window, got %v", out)
	}
	if out[0].Prov == nil {
		t.Fatalf("provenance enabled but record missing")
	}
	if len(out[0].Prov.Events) != 2 {
		t.Fatalf("want 2 contributing event citations, got %d", len(out[0].Prov.Events))
	}
	if out[0].Prov.Key == "" || out[0].Prov.KeyAttr != "id" {
		t.Fatalf("group key missing from record: %+v", out[0].Prov)
	}
	m := en.Metrics()
	if m.AggWindows != 1 {
		t.Fatalf("AggWindows = %d, want 1", m.AggWindows)
	}
	if m.AggInserts != 1 {
		t.Fatalf("AggInserts = %d, want 1", m.AggInserts)
	}
	s := en.StateSnapshot()
	if s.Engine != "agg(native)" {
		t.Fatalf("snapshot engine = %q", s.Engine)
	}
	if s.Inner == nil {
		t.Fatalf("inner snapshot missing")
	}
	if s.KeyAttr != "id" {
		t.Fatalf("snapshot KeyAttr = %q", s.KeyAttr)
	}
}

func TestStatePurgesAsWindowsSeal(t *testing.T) {
	p := compile(t, "AGGREGATE COUNT(*) OVER SEQ(A a, B b) WITHIN 40 SLIDE 20")
	en := New(p, core.MustNew(p, core.Options{K: 10}), false, 10)
	var seq event.Seq
	for i := 0; i < 200; i++ {
		ts := event.Time(i * 10)
		seq++
		en.Process(ev("A", ts, seq, nil))
		seq++
		en.Process(ev("B", ts+1, seq, nil))
	}
	elems := 0
	for _, g := range en.groups {
		elems += g.tree.Size()
	}
	if elems > 20 {
		t.Fatalf("tree not purging: %d live elements after stream", elems)
	}
	if en.Metrics().Purged == 0 {
		t.Fatalf("no purges counted")
	}
}
