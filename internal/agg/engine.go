// Package agg implements the windowed-aggregation operator: a wrapper
// engine that consumes the pattern matches of any inner strategy engine
// and emits sliding-window aggregate values (COUNT/SUM/AVG/MIN/MAX) over
// them, one FiBA tree per GROUP BY key group.
//
// The operator sits outermost — outside the K-slack levee or the ordered-
// output wrapper — because it needs the inner engine's *matches*, not the
// raw stream. Each inner match becomes one tree element at the match's
// completion time (its last event's timestamp); retractions from the
// speculative and hybrid strategies delete their element again. Window
// values are read off the tree in O(log n) merged partials per window, and
// the front of the tree is purged in amortized O(1) as windows seal.
//
// Emission has two modes, mirroring the strategy split:
//
//   - sealed (native, kslack, inorder, hybrid): a window (end−W, end] is
//     emitted exactly once, when the clock passes end + L — where the
//     lateness bound L is K, plus one window length when the pattern has a
//     trailing negation (such matches are withheld until their gap seals,
//     so they can surface up to K+W after their own timestamp). Sealed
//     output is final: no retractions.
//
//   - speculative (speculate): a window is previewed as soon as the clock
//     passes its end; late elements (or retracted matches) that change an
//     already-previewed window emit a retract of the old value followed by
//     an insert of the new one, so downstream consumers converge by
//     cancellation exactly as they do for speculative pattern matches.
package agg

import (
	"math"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/fiba"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// maxProvRefs caps the contributing-event citations on one aggregate
// match's lineage record; windows citing more events mark the record
// Truncated instead of growing without bound.
const maxProvRefs = 64

// group is one GROUP BY key group: its FiBA tree of match elements and,
// in speculative mode, the window values already previewed (by window
// end), so revisions can retract exactly what was emitted.
type group struct {
	key     event.Value
	has     bool
	tree    *fiba.Tree
	emitted map[event.Time]*plan.AggValue
}

// elemRef locates one inner match's tree element for retraction.
type elemRef struct {
	group event.Value
	key   fiba.Key
}

// elemAux is the per-element payload stored in the tree: the inner match's
// identity (for retraction and purge bookkeeping) and, when provenance is
// on, the citations of the events the match bound.
type elemAux struct {
	matchKey string
	refs     []provenance.EventRef
}

// Engine is the windowed-aggregation operator. It implements
// engine.Engine plus the optional Observable, Provenancer, Introspectable,
// Advancer, BatchProcessor, and (sealed mode over a checkpointable inner)
// Checkpointer interfaces.
type Engine struct {
	p     *plan.Plan
	spec  *plan.AggSpec
	inner engine.Engine
	met   metrics.Collector

	// speculative selects preview+revision emission; sealed otherwise.
	speculative bool
	// lateness is the bound L: no inner match can surface with a
	// completion timestamp older than clock − L.
	lateness event.Time

	// clock is the outer max-seen timestamp; arrival the outer event
	// count (aggregate matches are restamped against both).
	clock   event.Time
	arrival uint64

	// sealed is the highest window end finalized (emitted in sealed mode,
	// purged in both); sealedInit guards its zero value.
	sealed     event.Time
	sealedInit bool
	// previewed is the highest window end previewed (speculative only).
	previewed   event.Time
	previewInit bool

	// elemSeq disambiguates tree keys for elements at equal timestamps.
	elemSeq uint64

	groups  map[event.Value]*group
	order   []event.Value
	byMatch map[string]elemRef

	trace     obsv.TraceHook
	traceName string
	prov      bool
}

var _ engine.Engine = (*Engine)(nil)
var _ engine.BatchProcessor = (*Engine)(nil)
var _ engine.Advancer = (*Engine)(nil)

// New wraps a fully built strategy engine with the aggregation operator
// compiled into p. speculative selects preview+revision emission (the
// speculate strategy); lateness is the bound L the facade derived from K
// and the pattern shape.
func New(p *plan.Plan, inner engine.Engine, speculative bool, lateness event.Time) *Engine {
	if p.Agg == nil {
		panic("agg: plan has no aggregate clause")
	}
	return &Engine{
		p:           p,
		spec:        p.Agg,
		inner:       inner,
		speculative: speculative,
		lateness:    lateness,
		groups:      make(map[event.Value]*group),
		byMatch:     make(map[string]elemRef),
	}
}

// Name implements engine.Engine.
func (en *Engine) Name() string { return "agg(" + en.inner.Name() + ")" }

// Observe implements engine.Observable. The series binds to the operator
// itself: the inner engine's matches are consumed, not emitted, so the
// outer collector is the one that reflects the query's visible output.
func (en *Engine) Observe(s *obsv.Series, hook obsv.TraceHook) {
	en.met.Bind(s)
	en.trace = hook
	if s != nil && s.Name() != "" {
		en.traceName = s.Name()
	} else if en.traceName == "" {
		en.traceName = en.Name()
	}
}

// EnableProvenance implements engine.Provenancer. The inner engine's
// records would never surface (its matches are consumed), so lineage is
// built here: each aggregate match cites the events of the inner matches
// contributing to its window, capped at maxProvRefs.
func (en *Engine) EnableProvenance() { en.prov = true }

// SetLatencySampler implements engine.LatencySampled by delegating to the
// inner strategy engine, which owns the construction stage boundary.
func (en *Engine) SetLatencySampler(ls *obsv.LatencySampler) {
	engine.SetLatencySampler(en.inner, ls)
}

// StateSize implements engine.Engine: live tree elements plus inner state.
func (en *Engine) StateSize() int {
	return len(en.byMatch) + en.inner.StateSize()
}

// Process implements engine.Engine.
func (en *Engine) Process(e event.Event) []plan.Match {
	out := en.processOne(e, nil)
	en.publishGauges()
	return out
}

// ProcessBatch implements engine.BatchProcessor: the per-event pipeline in
// a loop (each event can move the clock and seal windows whose emission
// metadata depends on that moment), sharing one output slice and deferring
// only gauge publication to the batch boundary.
func (en *Engine) ProcessBatch(batch []event.Event) []plan.Match {
	var out []plan.Match
	for i := range batch {
		out = en.processOne(batch[i], out)
	}
	en.publishGauges()
	return out
}

// processOne admits one event: feed the inner engine, absorb the matches
// it emits into the trees, then advance the output frontiers under the
// (possibly) moved clock. Absorption runs before the clock advances so a
// match surfacing exactly at the lateness bound lands in its window before
// that window seals.
func (en *Engine) processOne(e event.Event, out []plan.Match) []plan.Match {
	en.arrival++
	var lag event.Time
	if e.TS < en.clock {
		lag = en.clock - e.TS
	}
	en.met.IncIn(e.TS < en.clock, lag)
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpAdmit, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
	}
	out = en.absorb(en.inner.Process(e), out)
	if e.TS > en.clock {
		en.clock = e.TS
		// The inner stack's own watermark can lag the stream clock the
		// operator seals by: irrelevant event types advance no inner clock
		// at all, and under the K-slack levee the core clock is the largest
		// *released* timestamp, which trails the watermark across gaps in
		// event time. Matches parked on a negation gap would then surface
		// after their window sealed here, so every clock move is forwarded
		// as a heartbeat, draining what the new clock seals before the
		// windows are. Without negations nothing is parked — inner matches
		// always surface within K of their timestamp — so the plain path
		// skips the nudge.
		if len(en.p.Negatives) > 0 {
			if adv, ok := en.inner.(engine.Advancer); ok {
				out = en.absorb(adv.Advance(e.TS), out)
			}
		}
	}
	return en.advanceOutput(out)
}

// Advance implements engine.Advancer: the heartbeat is forwarded to the
// inner engine first (it may seal pending matches, which must be absorbed
// before the outer clock moves), then windows are sealed under the new
// watermark.
func (en *Engine) Advance(ts event.Time) []plan.Match {
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpHeartbeat, Engine: en.traceName, TS: ts})
	}
	var out []plan.Match
	if adv, ok := en.inner.(engine.Advancer); ok {
		out = en.absorb(adv.Advance(ts), out)
	}
	if ts > en.clock {
		en.clock = ts
	}
	out = en.advanceOutput(out)
	en.publishGauges()
	return out
}

// Flush implements engine.Engine: absorb the inner engine's final matches,
// then emit every remaining window as final.
func (en *Engine) Flush() []plan.Match {
	out := en.absorb(en.inner.Flush(), nil)
	if en.speculative {
		out = en.previewTo(0, true, out)
	} else {
		out = en.sealTo(0, true, out)
	}
	en.reclaimAll()
	en.publishGauges()
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpFlush, Engine: en.traceName, TS: en.clock})
	}
	return out
}

// Metrics implements engine.Engine: output and ingestion figures come from
// the operator's collector; the inner engine's predicate-error, purge, and
// irrelevance counters are added in (both layers do real work).
func (en *Engine) Metrics() metrics.Snapshot {
	outer := en.met.Snapshot()
	inner := en.inner.Metrics()
	outer.PredErrors += inner.PredErrors
	outer.Purged += inner.Purged
	outer.PurgeCalls += inner.PurgeCalls
	outer.Irrelevant += inner.Irrelevant
	return outer
}

// StateSnapshot implements engine.Introspectable.
func (en *Engine) StateSnapshot() *provenance.StateSnapshot {
	name := en.traceName
	if name == "" {
		name = en.Name()
	}
	s := &provenance.StateSnapshot{
		Engine:  name,
		Started: en.arrival > 0,
		Clock:   en.clock,
		Safe:    en.clock - en.lateness,
		Pending: len(en.byMatch),
		Lineage: provenance.LineageStats{Enabled: en.prov},
	}
	if en.sealedInit {
		s.PurgeFrontier = en.sealed + en.spec.Slide - en.p.Window
	}
	if en.speculative {
		for _, g := range en.groups {
			s.Vulnerable += len(g.emitted)
		}
	}
	if en.spec.GroupSlot >= 0 {
		s.KeyAttr = en.spec.GroupAttr
		s.KeyGroups = len(en.groups)
		var gs []provenance.KeyGroupStat
		for _, gk := range en.order {
			g := en.groups[gk]
			gs = append(gs, provenance.KeyGroupStat{Key: g.key.String(), Size: g.tree.Size()})
		}
		s.TopKeyGroups = provenance.TopK(gs, 8)
	}
	if intr, ok := en.inner.(engine.Introspectable); ok {
		inner := intr.StateSnapshot()
		s.Inner = inner
		s.StackDepths = inner.StackDepths
		s.NegStoreSizes = inner.NegStoreSizes
	}
	return s
}

// absorb folds a run of inner matches into the trees: inserts add
// elements, retractions (speculative/hybrid inner) delete them again. In
// speculative mode each change revises the previewed windows it touches.
func (en *Engine) absorb(ms []plan.Match, out []plan.Match) []plan.Match {
	for i := range ms {
		if ms[i].Kind == plan.Retract {
			out = en.removeElem(ms[i], out)
		} else {
			out = en.addElem(ms[i], out)
		}
	}
	return out
}

// addElem maps one inner match to a tree element and inserts it.
func (en *Engine) addElem(m plan.Match, out []plan.Match) []plan.Match {
	ts, part, gv, ok := en.spec.ElementOf(m, en.met.IncPredError)
	if !ok {
		return out
	}
	var gk event.Value
	if en.spec.GroupSlot >= 0 {
		gk = gv.MapKey()
	}
	g := en.groups[gk]
	if g == nil {
		g = &group{key: gv, has: en.spec.GroupSlot >= 0, tree: fiba.New()}
		if en.speculative {
			g.emitted = make(map[event.Time]*plan.AggValue)
		}
		en.groups[gk] = g
		en.order = append(en.order, gk)
	}
	aux := &elemAux{matchKey: m.Key()}
	if en.prov {
		aux.refs = provenance.Refs(m.Events)
	}
	key := fiba.Key{TS: ts, Seq: en.elemSeq}
	en.elemSeq++
	before := g.tree.Stats()
	g.tree.Insert(key, part, aux)
	en.met.IncAggInsert(g.tree.Stats().FingerHits > before.FingerHits)
	en.byMatch[aux.matchKey] = elemRef{group: gk, key: key}
	if en.speculative {
		out = en.reviseAround(g, ts, out)
	}
	return out
}

// removeElem deletes the element an inner retraction points at. A missing
// element is benign: the match never produced one (attribute error) or its
// window already sealed and purged — in sealed mode the insert/retract
// pair always lands before the seal, so nothing wrong was emitted.
func (en *Engine) removeElem(m plan.Match, out []plan.Match) []plan.Match {
	k := m.Key()
	ref, ok := en.byMatch[k]
	if !ok {
		return out
	}
	delete(en.byMatch, k)
	g := en.groups[ref.group]
	if g == nil {
		return out
	}
	g.tree.Delete(ref.key)
	if en.speculative {
		out = en.reviseAround(g, ref.key.TS, out)
	}
	return out
}

// advanceOutput brings emission up to the current clock: previews (spec
// mode) up to the clock itself, seals (both modes) up to clock − L.
func (en *Engine) advanceOutput(out []plan.Match) []plan.Match {
	if en.speculative {
		out = en.previewTo(en.clock, false, out)
		en.reclaim(en.clock - en.lateness)
		return out
	}
	return en.sealTo(en.clock-en.lateness, false, out)
}

// sealTo emits every still-unsealed window with end < watermark as final,
// purging dead elements as the frontier advances. flush ignores the
// watermark and drains everything.
func (en *Engine) sealTo(watermark event.Time, flush bool, out []plan.Match) []plan.Match {
	for {
		end, ok := en.nextEnd(en.sealed, en.sealedInit)
		if !ok {
			return out
		}
		if !flush && end >= watermark {
			return out
		}
		out = en.emitEnd(end, false, out)
		en.sealed, en.sealedInit = end, true
		en.purgeFor(end)
	}
}

// previewTo emits every un-previewed window with end <= limit
// (speculative mode). Previews are revisable until the window seals.
func (en *Engine) previewTo(limit event.Time, flush bool, out []plan.Match) []plan.Match {
	for {
		end, ok := en.nextEnd(en.previewed, en.previewInit)
		if !ok {
			return out
		}
		if !flush && end > limit {
			return out
		}
		out = en.emitEnd(end, true, out)
		en.previewed, en.previewInit = end, true
	}
}

// reclaim advances the seal frontier in speculative mode: windows with
// end < watermark can no longer be revised, so their preview records drop
// and their dead elements purge. Nothing is emitted — previews already
// were.
func (en *Engine) reclaim(watermark event.Time) {
	end := alignDown(watermark-1, en.spec.Slide)
	if en.sealedInit && end <= en.sealed {
		return
	}
	en.sealed, en.sealedInit = end, true
	en.purgeFor(end)
}

// reclaimAll drops every element and group after a flush.
func (en *Engine) reclaimAll() {
	n := 0
	for _, g := range en.groups {
		n += g.tree.PurgeThrough(fiba.Key{TS: math.MaxInt64, Seq: fiba.MaxSeq}, func(any) {})
	}
	if n > 0 {
		en.met.ObservePurge(n)
	}
	en.groups = make(map[event.Value]*group)
	en.order = nil
	en.byMatch = make(map[string]elemRef)
}

// nextEnd returns the smallest grid end after cursor whose window holds at
// least one live element — skipping empty grid slots directly, so a long
// stream silence costs one tree probe, not one iteration per slide.
func (en *Engine) nextEnd(cursor event.Time, cursorInit bool) (event.Time, bool) {
	slide := en.spec.Slide
	if !cursorInit {
		m, ok := en.minElemTS()
		if !ok {
			return 0, false
		}
		return plan.AlignUp(m, slide), true
	}
	end := cursor + slide
	m, ok := en.firstAfter(end - en.p.Window)
	if !ok {
		return 0, false
	}
	if m <= end {
		return end, true
	}
	// The window at end is empty; the first end that can see the element
	// at m is its aligned-up grid slot (nonempty because slide <= window).
	return plan.AlignUp(m, slide), true
}

// minElemTS is the smallest live element timestamp across all groups.
func (en *Engine) minElemTS() (event.Time, bool) {
	var best event.Time
	found := false
	for _, g := range en.groups {
		if k, ok := g.tree.First(); ok && (!found || k.TS < best) {
			best, found = k.TS, true
		}
	}
	return best, found
}

// firstAfter is the smallest live element timestamp strictly greater
// than t across all groups.
func (en *Engine) firstAfter(t event.Time) (event.Time, bool) {
	var best event.Time
	found := false
	lo := fiba.Key{TS: t, Seq: fiba.MaxSeq}
	hi := fiba.Key{TS: math.MaxInt64, Seq: fiba.MaxSeq}
	for _, g := range en.groups {
		g.tree.Ascend(lo, hi, func(k fiba.Key, _ fiba.Partial, _ any) bool {
			if !found || k.TS < best {
				best, found = k.TS, true
			}
			return false
		})
	}
	return best, found
}

// emitEnd emits the window at end for every group that has a value
// passing HAVING, in group insertion order.
func (en *Engine) emitEnd(end event.Time, preview bool, out []plan.Match) []plan.Match {
	for _, gk := range en.order {
		g := en.groups[gk]
		av := en.windowValue(g, end)
		if av == nil {
			continue
		}
		en.met.IncAggWindow()
		if preview {
			g.emitted[end] = av
		}
		out = en.emit(g, av, plan.Insert, out)
	}
	return out
}

// windowValue computes the window (end−W, end] for one group, or nil when
// the window is empty or HAVING rejects it.
func (en *Engine) windowValue(g *group, end event.Time) *plan.AggValue {
	w := en.p.Window
	part := g.tree.Query(fiba.Key{TS: end - w, Seq: fiba.MaxSeq}, fiba.Key{TS: end, Seq: fiba.MaxSeq})
	v, n, ok := en.spec.Result(part)
	if !ok {
		return nil
	}
	av := &plan.AggValue{
		Func:        string(en.spec.Func),
		WindowStart: end - w,
		WindowEnd:   end,
		Group:       g.key,
		HasGroup:    g.has,
		Value:       v,
		Count:       n,
	}
	if !en.spec.EvalHaving(av, en.met.IncPredError) {
		return nil
	}
	return av
}

// reviseAround re-evaluates every already-previewed window an element at
// ts falls in (speculative mode), emitting retract+insert pairs where the
// previewed value changed.
func (en *Engine) reviseAround(g *group, ts event.Time, out []plan.Match) []plan.Match {
	if !en.previewInit {
		return out
	}
	w := en.p.Window
	for end := plan.AlignUp(ts, en.spec.Slide); end <= en.previewed && end-w < ts; end += en.spec.Slide {
		out = en.revise(g, end, out)
	}
	return out
}

// revise reconciles one previewed window against its current tree value.
func (en *Engine) revise(g *group, end event.Time, out []plan.Match) []plan.Match {
	old := g.emitted[end]
	nv := en.windowValue(g, end)
	switch {
	case old == nil && nv == nil:
	case old == nil:
		// The window surfaced late (was empty or HAVING-rejected at
		// preview time): a plain insert, no compensation needed.
		en.met.IncAggWindow()
		g.emitted[end] = nv
		out = en.emit(g, nv, plan.Insert, out)
	case nv == nil:
		en.met.IncAggRevision()
		delete(g.emitted, end)
		out = en.emit(g, old, plan.Retract, out)
	case old.Same(nv):
	default:
		en.met.IncAggRevision()
		g.emitted[end] = nv
		out = en.emit(g, old, plan.Retract, out)
		out = en.emit(g, nv, plan.Insert, out)
	}
	return out
}

// emit builds and accounts one aggregate match.
func (en *Engine) emit(g *group, av *plan.AggValue, kind plan.MatchKind, out []plan.Match) []plan.Match {
	m := plan.Match{
		Kind:      kind,
		Events:    []event.Event{plan.WindowEvent(av.WindowEnd)},
		EmitSeq:   event.Seq(en.arrival),
		EmitClock: en.clock,
		Agg:       av,
	}
	if en.prov {
		m.Prov = en.record(g, av, kind)
	}
	retract := kind == plan.Retract
	lat := en.clock - av.WindowEnd
	if lat < 0 {
		lat = 0
	}
	en.met.AddMatch(retract, lat, 0)
	if en.trace != nil {
		op := obsv.OpEmit
		if retract {
			op = obsv.OpRetract
		}
		te := obsv.TraceEvent{Op: op, Engine: en.traceName, TS: av.WindowEnd, Seq: m.EmitSeq, N: int(av.Count)}
		if m.Prov != nil {
			te.Match = m.Prov.MatchKey()
		}
		en.trace.Trace(te)
	}
	return append(out, m)
}

// record builds the lineage record for one aggregate match: the window
// bounds, the group key, and the citations of the events whose matches
// contribute to the window, capped at maxProvRefs.
func (en *Engine) record(g *group, av *plan.AggValue, kind plan.MatchKind) *provenance.Record {
	r := &provenance.Record{
		Kind:      provenance.KindInsert,
		Shard:     -1,
		WindowLo:  av.WindowStart,
		WindowHi:  av.WindowEnd,
		SealTS:    av.WindowEnd + en.lateness,
		EmitClock: en.clock,
	}
	if kind == plan.Retract {
		r.Kind = provenance.KindRetract
	}
	if av.HasGroup {
		r.Key = av.Group.String()
		r.KeyAttr = en.spec.GroupAttr
	}
	lo := fiba.Key{TS: av.WindowStart, Seq: fiba.MaxSeq}
	hi := fiba.Key{TS: av.WindowEnd, Seq: fiba.MaxSeq}
	g.tree.Ascend(lo, hi, func(_ fiba.Key, _ fiba.Partial, aux any) bool {
		a := aux.(*elemAux)
		if len(a.refs) == 0 || len(r.Events)+len(a.refs) > maxProvRefs {
			// Elements restored from a checkpoint carry no citations;
			// either way the record is an undercount, so mark it.
			r.Truncated = true
			return len(a.refs) == 0
		}
		r.Events = append(r.Events, a.refs...)
		return true
	})
	return r
}

// purgeFor removes elements that can never contribute to a window past
// end (ts <= end + slide − W), drops their retraction bookkeeping, and in
// speculative mode forgets preview records for sealed windows.
func (en *Engine) purgeFor(end event.Time) {
	cut := end + en.spec.Slide - en.p.Window
	n := 0
	for _, g := range en.groups {
		n += g.tree.PurgeThrough(fiba.Key{TS: cut, Seq: fiba.MaxSeq}, func(aux any) {
			delete(en.byMatch, aux.(*elemAux).matchKey)
		})
		for e := range g.emitted {
			if e <= end {
				delete(g.emitted, e)
			}
		}
	}
	if n > 0 {
		en.met.ObservePurge(n)
		if en.trace != nil {
			en.trace.Trace(obsv.TraceEvent{Op: obsv.OpPurge, Engine: en.traceName, TS: cut, N: n})
		}
	}
	en.dropEmpty()
}

// dropEmpty retires groups with no elements and no revisable previews.
func (en *Engine) dropEmpty() {
	kept := en.order[:0]
	for _, gk := range en.order {
		g := en.groups[gk]
		if g.tree.Size() == 0 && len(g.emitted) == 0 {
			delete(en.groups, gk)
			continue
		}
		kept = append(kept, gk)
	}
	en.order = kept
}

// publishGauges refreshes the state gauges at call boundaries.
func (en *Engine) publishGauges() {
	height, elems := 0, 0
	for _, g := range en.groups {
		if h := g.tree.Height(); h > height {
			height = h
		}
		elems += g.tree.Size()
	}
	en.met.SetAggTree(height, elems)
	en.met.SetLiveState(en.StateSize())
	if en.spec.GroupSlot >= 0 {
		en.met.SetKeyGroups(len(en.groups))
	}
}

// alignDown returns the largest multiple of slide that is <= ts.
func alignDown(ts, slide event.Time) event.Time {
	d := plan.AlignUp(ts, slide)
	if d > ts {
		d -= slide
	}
	return d
}
