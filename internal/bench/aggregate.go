package bench

import (
	"fmt"
	"sort"
	"time"

	"oostream"
	"oostream/internal/gen"
)

// E21FibaAggregation prices the windowed-aggregation operator: the same
// AGGREGATE query runs through the FiBA-tree engine and through a
// brute-force comparator that keeps the window's match elements in a
// sorted slice and rescans them at every window seal. Both sides pay the
// identical pattern-matching cost underneath, so the gap isolates window
// maintenance: O(log n) merged partials per window versus O(elements per
// window) rescans. MAX is the aggregation under test because it has no
// subtract-on-evict shortcut — recomputation is the honest alternative.
// The sweep shrinks SLIDE under a large fixed WITHIN: every element then
// participates in window/slide overlapping windows, so the rescan refolds
// the same ~thousand elements more and more often while the tree answers
// each extra window from O(log n) cached partials. The table locates the
// crossover pitch where the tree starts paying for itself; at tumbling
// pitches the flat slice wins on constants.
func E21FibaAggregation(s Scale) *Table {
	const window = oostream.Time(120_000)
	sorted := rfidSorted(s, 17)
	events := disorder(sorted, 0.2, defaultK, 18)

	t := &Table{
		ID:      "E21",
		Title:   "Windowed aggregation: FiBA tree vs. brute-force rescan",
		Anchor:  "extension: out-of-order sliding-window aggregation over pattern-match streams",
		Columns: []string{"slide", "windows", "elems/win", "fiba kev/s", "rescan kev/s", "speedup", "agree"},
		Notes: []string{
			"MAX(e.id) over SEQ(SHELF, EXIT) matches, WITHIN 120s; disorder 20% bounded by K=2000",
			"both sides run the full pattern engine; the delta is window maintenance only",
			"rescan keeps a sorted element slice and refolds every sealed window from scratch",
			"speedup = rescan wall time / fiba wall time (>1 means the tree wins)",
			"the rescan emits bare (end,value) tuples with no Match records, metrics, or revision support; BenchmarkE21Fiba compares the data structures alone",
		},
	}
	for _, slide := range []oostream.Time{2_000, 500, 100, 20} {
		aggQ := oostream.MustCompile(fmt.Sprintf(`
			AGGREGATE MAX(e.id) OVER SEQ(SHELF s, EXIT e)
			WHERE s.id = e.id
			WITHIN %d SLIDE %d`, window, slide), gen.RFIDSchema())
		fibaRes := runOne(aggQ, oostream.Config{K: defaultK}, events)
		scanElapsed, scanWins := runRescan(events, window, slide)

		fibaWins := make(map[string]int)
		var windows, contributors int64
		for _, m := range fibaRes.Matches {
			a := oostream.AsResult(m)
			agg, ok := a.Aggregate()
			if !ok {
				continue
			}
			fibaWins[winKey(agg.WindowEnd, agg.Value.String(), agg.Count)]++
			windows++
			contributors += agg.Count
		}
		agree := len(fibaWins) == len(scanWins)
		for k, n := range scanWins {
			if fibaWins[k] != n {
				agree = false
			}
		}
		elemsPerWin := 0.0
		if windows > 0 {
			elemsPerWin = float64(contributors) / float64(windows)
		}
		scanThroughput := float64(len(events)) / scanElapsed.Seconds()
		t.AddRow(fmt.Sprintf("%d", slide), fmtInt(int(windows)), fmtF1(elemsPerWin),
			fmtKevS(fibaRes.Throughput()), fmtKevS(scanThroughput),
			fmtF1(scanElapsed.Seconds()/fibaRes.Elapsed.Seconds()),
			fmt.Sprintf("%v", agree))
	}
	return t
}

func winKey(end oostream.Time, val string, count int64) string {
	return fmt.Sprintf("%d|%s|%d", end, val, count)
}

// runRescan is the brute-force comparator: the plain pattern engine feeds
// match elements (completion timestamp, MAX argument) into a slice kept
// sorted by timestamp; every time the stream clock seals a window end the
// window's elements are rescanned to refold the aggregate. Returns the
// best wall time of three repetitions and the emitted window multiset.
func runRescan(events []oostream.Event, window, slide oostream.Time) (time.Duration, map[string]int) {
	// Same WITHIN as the aggregate query so the pattern side of both
	// pipelines does identical work.
	q := oostream.MustCompile(fmt.Sprintf(
		"PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN %d", window),
		gen.RFIDSchema())
	const reps = 3
	var (
		best time.Duration = -1
		wins map[string]int
	)
	for rep := 0; rep < reps; rep++ {
		en := oostream.MustNewEngine(q, oostream.Config{K: defaultK})
		type elem struct {
			ts  oostream.Time
			val int64
		}
		var (
			elems   []elem
			clock   oostream.Time
			nextEnd oostream.Time = slide
		)
		wins = make(map[string]int)
		seal := func(end oostream.Time) {
			lo := sort.Search(len(elems), func(i int) bool { return elems[i].ts > end-window })
			hi := sort.Search(len(elems), func(i int) bool { return elems[i].ts > end })
			if lo == hi {
				return
			}
			max := elems[lo].val
			for _, e := range elems[lo+1 : hi] {
				if e.val > max {
					max = e.val
				}
			}
			wins[winKey(end, fmt.Sprintf("%d", max), int64(hi-lo))]++
			// Evict elements no future window can cover.
			expired := sort.Search(len(elems), func(i int) bool { return elems[i].ts > end+slide-window })
			if expired > 0 {
				elems = elems[expired:]
			}
		}
		absorb := func(ms []oostream.Match) {
			for _, m := range ms {
				ts := m.Events[len(m.Events)-1].TS
				val, _ := m.Events[len(m.Events)-1].Attrs["id"].AsInt()
				i := sort.Search(len(elems), func(j int) bool { return elems[j].ts > ts })
				elems = append(elems, elem{})
				copy(elems[i+1:], elems[i:])
				elems[i] = elem{ts: ts, val: val}
			}
		}
		start := time.Now()
		for _, ev := range events {
			absorb(en.Process(ev))
			if ev.TS > clock {
				clock = ev.TS
				// Seal as the aggregate operator does: lateness defaultK
				// behind the stream clock, window ends on the slide grid.
				for nextEnd < clock-defaultK {
					seal(nextEnd)
					nextEnd += slide
				}
			}
		}
		absorb(en.Flush())
		for len(elems) > 0 {
			seal(nextEnd)
			nextEnd += slide
		}
		elapsed := time.Since(start)
		if best < 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, wins
}
