package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"oostream"
)

func TestAllExperimentsRunAtSmokeScale(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tbl := exp.Run(Smoke)
			if tbl.ID != exp.ID {
				t.Errorf("table ID = %q, want %q", tbl.ID, exp.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("row %d has %d cells, want %d", i, len(row), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), exp.ID) {
				t.Error("render missing experiment ID")
			}
			buf.Reset()
			if err := tbl.RenderCSV(&buf); err != nil {
				t.Fatal(err)
			}
			if lines := strings.Count(buf.String(), "\n"); lines != len(tbl.Rows)+2 {
				t.Errorf("CSV lines = %d, want %d", lines, len(tbl.Rows)+2)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("E3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

// cell finds the value at (rowMatch, col) in a table.
func cell(t *testing.T, tbl *Table, match func(row []string) bool, col string) string {
	t.Helper()
	colIdx := -1
	for i, c := range tbl.Columns {
		if c == col {
			colIdx = i
		}
	}
	if colIdx < 0 {
		t.Fatalf("column %q not found in %v", col, tbl.Columns)
	}
	for _, row := range tbl.Rows {
		if match(row) {
			return row[colIdx]
		}
	}
	t.Fatalf("no row matched in %s", tbl.ID)
	return ""
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestE1Shape checks the headline claim: exact strategies stay exact under
// disorder while the naive engine degrades.
func TestE1Shape(t *testing.T) {
	tbl := E1Correctness(Smoke)
	at := func(ratio, strat string) (p, r float64) {
		match := func(row []string) bool { return row[0] == ratio && row[1] == strat }
		return parseF(t, cell(t, tbl, match, "precision")), parseF(t, cell(t, tbl, match, "recall"))
	}
	for _, strat := range []string{"kslack", "native", "speculate"} {
		p, r := at("20%", strat)
		if p < 0.9999 || r < 0.9999 {
			t.Errorf("%s at 20%% disorder: precision=%.3f recall=%.3f, want exact", strat, p, r)
		}
	}
	_, naiveRecall := at("20%", "inorder")
	if naiveRecall > 0.99 {
		t.Errorf("inorder recall at 20%% disorder = %.3f; expected visible degradation", naiveRecall)
	}
	// At zero disorder everyone is exact.
	for _, strat := range []string{"inorder", "kslack", "native", "speculate"} {
		p, r := at("0%", strat)
		if p < 0.9999 || r < 0.9999 {
			t.Errorf("%s at 0%%: precision=%.3f recall=%.3f", strat, p, r)
		}
	}
}

// TestE8Shape checks the latency claim: the levee pays ~K, native does not.
func TestE8Shape(t *testing.T) {
	tbl := E8Latency(Smoke)
	match := func(k, strat string) func([]string) bool {
		return func(row []string) bool { return row[0] == k && row[1] == strat }
	}
	kslackMean := parseF(t, cell(t, tbl, match("10000", "kslack"), "lat_mean(ms)"))
	nativeMean := parseF(t, cell(t, tbl, match("10000", "native"), "lat_mean(ms)"))
	if kslackMean < 5_000 {
		t.Errorf("kslack mean latency at K=10000 is %.1f, expected ~K", kslackMean)
	}
	if nativeMean > kslackMean/4 {
		t.Errorf("native mean latency %.1f not clearly below kslack %.1f", nativeMean, kslackMean)
	}
}

// TestE6Shape checks that disabling purge blows up state.
func TestE6Shape(t *testing.T) {
	tbl := E6PurgeAblation(Smoke)
	never := parseF(t, cell(t, tbl, func(r []string) bool { return r[0] == "never" }, "peak_state"))
	eager := parseF(t, cell(t, tbl, func(r []string) bool { return r[0] == "1" }, "peak_state"))
	if never < 5*eager {
		t.Errorf("purge ablation: never=%v eager=%v, expected blow-up", never, eager)
	}
}

// TestE11Shape checks that retractions appear under disorder and converge.
func TestE11Shape(t *testing.T) {
	tbl := E11Speculation(Smoke)
	at := func(ratio, col string) float64 {
		return parseF(t, cell(t, tbl, func(r []string) bool { return r[0] == ratio }, col))
	}
	if at("0%", "retracts") != 0 {
		t.Error("no disorder should mean no retractions")
	}
	if at("40%", "retracts") == 0 {
		t.Error("heavy disorder should force retractions")
	}
	if at("40%", "precision") < 0.9999 || at("40%", "recall") < 0.9999 {
		t.Error("converged speculative output must be exact")
	}
}

// TestE4Shape checks the memory claim: kslack buffer grows with K and
// dominates native at large K.
func TestE4Shape(t *testing.T) {
	tbl := E4MemoryVsK(Smoke)
	at := func(k, strat string) float64 {
		return parseF(t, cell(t, tbl, func(r []string) bool { return r[0] == k && r[1] == strat }, "peak_state"))
	}
	if at("10000", "kslack") <= at("100", "kslack") {
		t.Error("kslack peak state should grow with K")
	}
	if at("10000", "kslack") <= at("10000", "native") {
		t.Error("at large K the reorder buffer should dominate native state")
	}
}

// Sanity: the Result helper computes throughput from elapsed time.
func TestResultThroughput(t *testing.T) {
	r := Result{Events: 1000}
	if r.Throughput() != 0 {
		t.Error("zero elapsed should give zero throughput")
	}
	q := oostream.MustCompile("PATTERN SEQ(A a) WITHIN 10", nil)
	events := []oostream.Event{{Type: "A", TS: 1, Seq: 1}}
	res := runOne(q, oostream.Config{K: 1}, events)
	if res.Throughput() <= 0 || res.Events != 1 {
		t.Errorf("runOne: %+v", res)
	}
}

func BenchmarkE20Adaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		E20Adaptive(Smoke)
	}
}

func BenchmarkE21Aggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		E21FibaAggregation(Smoke)
	}
}

func BenchmarkE22LatencyAttribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		E22LatencyAttribution(Smoke)
	}
}

// TestE22Shape checks the latency-attribution experiment's invariants:
// sampled rows carry span counts and stay exact, and the deeper sampling
// rate opens proportionally more spans.
func TestE22Shape(t *testing.T) {
	tbl := E22LatencyAttribution(Smoke)
	at := func(mode, col string) string {
		return cell(t, tbl, func(r []string) bool { return r[0] == mode }, col)
	}
	if at("1/256", "exact") != "true" || at("1/16", "exact") != "true" {
		t.Error("sampling must not change match output")
	}
	coarse := parseF(t, at("1/256", "spans"))
	dense := parseF(t, at("1/16", "spans"))
	if coarse <= 0 || dense < 8*coarse {
		t.Errorf("span counts: 1/256=%v 1/16=%v, want ~16x more at 1/16", coarse, dense)
	}
}
