package bench

import (
	"fmt"
	"time"

	"oostream"
	"oostream/internal/gen"
)

// Scale sizes an experiment.
type Scale int

// Scales. Smoke keeps unit-test and `go test -bench` runs fast; Full is
// what cmd/espbench uses to regenerate the paper-scale tables.
const (
	Smoke Scale = iota + 1
	Full
)

// items returns the RFID item count for the scale.
func (s Scale) items() int {
	if s == Full {
		return 30_000 // ~75k events with defaults
	}
	return 1_500
}

// uniformN returns the uniform-workload event count for the scale.
func (s Scale) uniformN() int {
	if s == Full {
		return 100_000
	}
	return 5_000
}

// Result is one strategy's measured run.
type Result struct {
	Strategy string
	Matches  []oostream.Match
	Elapsed  time.Duration
	Metrics  oostream.Metrics
	Events   int
}

// Throughput returns events per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Events) / r.Elapsed.Seconds()
}

// Observer, when non-nil, is injected into every engine the harness
// builds, so a live HTTP endpoint (espbench -listen) can watch experiment
// counters as they run. Series accumulate across repetitions and
// experiments; they are a live view, not a measurement.
var Observer *oostream.Observer

// runOne drives a fresh engine over the events and measures it. The run is
// repeated and the best wall time kept, so single-shot scheduler noise does
// not distort the throughput tables; matches and metrics come from the
// final repetition (they are deterministic across repetitions).
func runOne(q *oostream.Query, cfg oostream.Config, events []oostream.Event) Result {
	cfg.Observer = Observer
	return runConfigured(q, cfg, events)
}

// runConfigured is runOne without the package Observer injection, for
// experiments (E16) that control instrumentation explicitly.
func runConfigured(q *oostream.Query, cfg oostream.Config, events []oostream.Event) Result {
	const reps = 3
	var (
		best    time.Duration = -1
		matches []oostream.Match
		met     oostream.Metrics
	)
	for i := 0; i < reps; i++ {
		en := oostream.MustNewEngine(q, cfg)
		start := time.Now()
		matches = en.ProcessAll(events)
		elapsed := time.Since(start)
		met = en.Metrics()
		if best < 0 || elapsed < best {
			best = elapsed
		}
	}
	return Result{
		Strategy: string(cfg.Strategy),
		Matches:  matches,
		Elapsed:  best,
		Metrics:  met,
		Events:   len(events),
	}
}

// precisionRecall scores got against want as key multisets, ignoring
// retractions by first converging the stream.
func precisionRecall(want, got []oostream.Match) (precision, recall float64) {
	wantKeys := keyCounts(want)
	gotKeys := keyCounts(got)
	var hit, gotTotal, wantTotal int
	for k, n := range gotKeys {
		gotTotal += n
		if w := wantKeys[k]; w > 0 {
			if n < w {
				hit += n
			} else {
				hit += w
			}
		}
	}
	for _, n := range wantKeys {
		wantTotal += n
	}
	if gotTotal == 0 {
		precision = 1
	} else {
		precision = float64(hit) / float64(gotTotal)
	}
	if wantTotal == 0 {
		recall = 1
	} else {
		recall = float64(hit) / float64(wantTotal)
	}
	return precision, recall
}

func keyCounts(ms []oostream.Match) map[string]int {
	out := make(map[string]int, len(ms))
	for _, m := range ms {
		if m.Kind == oostream.Retract {
			out[m.Key()]--
		} else {
			out[m.Key()]++
		}
	}
	for k, n := range out {
		if n <= 0 {
			delete(out, k)
		}
	}
	return out
}

// Experiment is one reproducible figure/table.
type Experiment struct {
	// ID is the experiment identifier ("E1".."E11").
	ID string
	// Title names the experiment.
	Title string
	// Run executes it at the given scale.
	Run func(s Scale) *Table
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "correctness vs. disorder", E1Correctness},
		{"E2", "throughput vs. disorder ratio", E2ThroughputVsDisorder},
		{"E3", "throughput vs. slack K", E3ThroughputVsK},
		{"E4", "memory vs. slack K", E4MemoryVsK},
		{"E5", "cost vs. window size", E5Window},
		{"E6", "purge ablation", E6PurgeAblation},
		{"E7", "scan-optimization ablation", E7OptAblation},
		{"E8", "result latency", E8Latency},
		{"E9", "pattern length scaling", E9PatternLength},
		{"E10", "negation under disorder", E10Negation},
		{"E11", "speculative output", E11Speculation},
		{"E12", "simulated network delivery", E12NetworkSim},
		{"E13", "partitioned scale-out", E13Partitioned},
		{"E14", "keyed stacks vs. key cardinality", E14KeyCardinality},
		{"E16", "observability overhead", E16Observability},
		{"E18", "batched admission throughput", E18Batch},
		{"E19", "multi-query shared admission", E19MultiQuery},
		{"E20", "adaptive disorder control under drift", E20Adaptive},
		{"E21", "windowed aggregation: FiBA vs. rescan", E21FibaAggregation},
		{"E22", "wall-clock latency attribution overhead", E22LatencyAttribution},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q", id)
}

// Workload and query fixtures shared by the experiments.

const (
	// defaultK is the disorder bound used unless the experiment sweeps it.
	defaultK = oostream.Time(2_000)
)

// seqQuery is the plain sequence query used by the cost experiments.
func seqQuery() *oostream.Query {
	return oostream.MustCompile(
		"PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN 6s",
		gen.RFIDSchema())
}

// negQuery is the shoplifting query (negation) of the motivating example.
func negQuery() *oostream.Query {
	return oostream.MustCompile(`
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id
		WITHIN 6s`, gen.RFIDSchema())
}

// rfidSorted generates the deterministic sorted RFID stream for a scale.
func rfidSorted(s Scale, seed int64) []oostream.Event {
	return gen.RFID(gen.DefaultRFID(s.items(), seed))
}

// disorder applies the standard bounded shuffle.
func disorder(events []oostream.Event, ratio float64, k oostream.Time, seed int64) []oostream.Event {
	return gen.Shuffle(events, gen.Disorder{Ratio: ratio, MaxDelay: k, Seed: seed})
}
