// Package bench implements the evaluation harness: one experiment per
// figure/table of the reproduced paper (see DESIGN.md §4 for the index),
// each producing a rendered table that cmd/espbench prints and
// bench_test.go exercises as Go benchmarks.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier, e.g. "E2".
	ID string
	// Title is the human-readable experiment name.
	Title string
	// Anchor cites what the experiment reconstructs from the paper.
	Anchor string
	// Columns are the header names.
	Columns []string
	// Rows hold the cells, one slice per row, aligned with Columns.
	Rows [][]string
	// Notes carries qualitative observations (who wins, expected shape).
	Notes []string
	// Host identifies the machine the experiment ran on; cmd/espbench
	// stamps it on JSON output so recorded baselines carry provenance.
	Host *Host `json:",omitempty"`
}

// AddRow appends a row from formatted values.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s\n   (%s)\n", t.ID, t.Title, t.Anchor); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	underline := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		underline[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "   note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (ID and title as comment lines).
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s,%s\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes the table as one indented JSON object. Tables render
// independently; cmd/espbench wraps a run's tables into a single array so
// the output file is valid JSON as a whole.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Cell formatting helpers shared by the experiments.

func fmtInt(v int) string      { return fmt.Sprintf("%d", v) }
func fmtU64(v uint64) string   { return fmt.Sprintf("%d", v) }
func fmtF1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func fmtF3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func fmtPct(v float64) string  { return fmt.Sprintf("%.0f%%", v*100) }
func fmtKevS(v float64) string { return fmt.Sprintf("%.0f", v/1000) }
