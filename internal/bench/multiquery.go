package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"oostream"
	"oostream/internal/gen"
)

// Host records the machine the benchmark ran on, stamped into JSON output
// (BENCH_native.json) so recorded numbers carry their provenance.
type Host struct {
	NumCPU     int
	GOMAXPROCS int
	GoVersion  string
}

// HostInfo captures the current process's host metadata.
func HostInfo() *Host {
	return &Host{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// multiQueryTypes is the event-type universe of the multi-query workload.
// 200 types with two-type queries gives sparse overlap: each query is
// relevant to ~1% of the stream, so shared admission plus the event-type
// index should leave most (query, event) pairs undispatched.
const multiQueryTypes = 200

// multiQueryUniverse returns the type names T0..T{n-1}.
func multiQueryUniverse(n int) []string {
	types := make([]string, n)
	for i := range types {
		types[i] = fmt.Sprintf("T%d", i)
	}
	return types
}

// multiQueries compiles n two-step SEQ queries over seed-drawn type pairs
// from the universe, each equi-joined on id within a short window.
func multiQueries(n int, seed int64) []*oostream.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*oostream.Query, n)
	for i := range qs {
		a := rng.Intn(multiQueryTypes)
		b := rng.Intn(multiQueryTypes - 1)
		if b >= a {
			b++
		}
		qs[i] = oostream.MustCompile(fmt.Sprintf(
			"PATTERN SEQ(T%d x0, T%d x1) WHERE x0.id = x1.id WITHIN 400", a, b), nil)
	}
	return qs
}

// MultiQuery measures shared-admission multi-query throughput: one
// QuerySet holding q registered queries versus a loop over q independent
// single-query engines fed the same stream in the same run. Both sides run
// the native strategy at the same K; the QuerySet pays admission
// (reorder/purge) once per event and uses its event-type index plus prefix
// gating to skip (query, event) pairs that cannot extend a match, while
// the loop pays full admission per (engine, event) pair. Rows report both
// aggregate throughputs, the speedup, the measured dispatch rate per
// event, and an exactness check of the QuerySet's per-query output against
// the corresponding independent engine.
func MultiQuery(s Scale, counts []int) *Table {
	const k = 200
	events := gen.Shuffle(
		gen.Uniform(s.uniformN(), multiQueryUniverse(multiQueryTypes), 8, 10, 91),
		gen.Disorder{Ratio: 0.20, MaxDelay: k, Seed: 92})
	t := &Table{
		ID:      "E19",
		Title:   "Multi-query shared admission vs. independent engines",
		Anchor:  "extension: QuerySet with per-event-type predicate indexing",
		Columns: []string{"queries", "qs kev/s", "loop kev/s", "speedup", "disp/ev", "exact"},
	}
	for _, n := range counts {
		queries := multiQueries(n, int64(100+n))
		cfg := oostream.Config{Strategy: oostream.StrategyNative, K: k}

		// Loop baseline: q independent engines, each re-admitting the
		// full stream. Reps interleave with the QuerySet reps below via
		// best-of so load drift hits both sides alike.
		reps := 3
		var qsBest, loopBest time.Duration = -1, -1
		var qsMatches []oostream.Match
		loopMatches := make([][]oostream.Match, n)
		var dispatched uint64
		for rep := 0; rep < reps; rep++ {
			set := oostream.MustNewQuerySet(oostream.QuerySetConfig{
				Strategy: cfg.Strategy, K: cfg.K})
			for i, q := range queries {
				if err := set.Register(fmt.Sprintf("q%d", i), q); err != nil {
					panic(err)
				}
			}
			start := time.Now()
			ms := set.ProcessAll(events)
			if d := time.Since(start); qsBest < 0 || d < qsBest {
				qsBest = d
			}
			qsMatches = ms
			dispatched = 0
			for _, st := range set.Stats() {
				dispatched += st.Dispatched
			}

			start = time.Now()
			for i, q := range queries {
				en := oostream.MustNewEngine(q, cfg)
				loopMatches[i] = en.ProcessAll(events)
			}
			if d := time.Since(start); loopBest < 0 || d < loopBest {
				loopBest = d
			}
		}
		// Per-query exactness: the QuerySet's tagged output grouped by
		// query id must equal each independent engine's output.
		byQuery := make(map[string][]oostream.Match)
		for _, m := range qsMatches {
			byQuery[m.Query] = append(byQuery[m.Query], m)
		}
		exact := true
		for i := range queries {
			if same, _ := oostream.SameResults(loopMatches[i], byQuery[fmt.Sprintf("q%d", i)]); !same {
				exact = false
			}
		}

		qsTput := float64(len(events)) / qsBest.Seconds()
		loopTput := float64(len(events)) / loopBest.Seconds()
		t.AddRow(fmtInt(n), fmtKevS(qsTput), fmtKevS(loopTput),
			fmt.Sprintf("%.1f", qsTput/loopTput),
			fmt.Sprintf("%.2f", float64(dispatched)/float64(len(events))),
			fmt.Sprintf("%v", exact))
	}
	t.Notes = append(t.Notes,
		"expected: speedup grows with query count — the QuerySet admits each event once and its type index touches only the ~1% of queries whose first step or gate matches, while the loop baseline re-admits the stream per engine",
		"disp/ev is inner-engine dispatches per admitted event; well under 1 means the index and prefix gates are doing the filtering")
	return t
}

// E19MultiQuery is the registered experiment: the MultiQuery sweep at
// 10, 100, and 1000 registered queries.
func E19MultiQuery(s Scale) *Table {
	return MultiQuery(s, []int{10, 100, 1000})
}
