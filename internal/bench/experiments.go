package bench

import (
	"fmt"
	"time"

	"oostream"
	"oostream/internal/gen"
	"oostream/internal/netsim"
)

// oooRatios is the disorder sweep used by several experiments.
var oooRatios = []float64{0, 0.01, 0.05, 0.10, 0.20, 0.40}

// E1Correctness reproduces the paper's problem analysis as a table: the
// result quality of each strategy on increasingly disordered input, scored
// against the exact result set (the in-order engine on the sorted stream).
// Expected shape: inorder loses recall as disorder grows; kslack, native,
// and (after convergence) speculate stay at 1.000/1.000.
func E1Correctness(s Scale) *Table {
	q := negQuery()
	sorted := rfidSorted(s, 1)
	truth := runOne(q, oostream.Config{Strategy: oostream.StrategyInOrder}, sorted)

	t := &Table{
		ID:      "E1",
		Title:   "Result correctness vs. disorder ratio",
		Anchor:  "paper §problem analysis: missed and premature output of in-order SSC",
		Columns: []string{"ooo%", "strategy", "matches", "precision", "recall"},
	}
	for _, ratio := range oooRatios {
		shuffled := disorder(sorted, ratio, defaultK, 2)
		for _, strat := range oostream.Strategies() {
			r := runOne(q, oostream.Config{Strategy: strat, K: defaultK}, shuffled)
			p, rec := precisionRecall(truth.Matches, r.Matches)
			t.AddRow(fmtPct(ratio), string(strat), fmtInt(len(keyCounts(r.Matches))), fmtF3(p), fmtF3(rec))
		}
	}
	t.Notes = append(t.Notes,
		"expected: inorder degrades with disorder; kslack/native/speculate stay exact",
	)
	return t
}

// E2ThroughputVsDisorder measures CPU cost (as events/second) of each
// strategy across the disorder sweep. Expected shape: native tracks kslack
// within a small factor and degrades gracefully with disorder; inorder is
// fastest but wrong (see E1).
func E2ThroughputVsDisorder(s Scale) *Table {
	q := seqQuery()
	sorted := rfidSorted(s, 3)
	t := &Table{
		ID:      "E2",
		Title:   "Throughput vs. disorder ratio",
		Anchor:  "paper §experiments: CPU cost as out-of-order percentage grows",
		Columns: []string{"ooo%", "strategy", "kev/s", "matches"},
	}
	for _, ratio := range oooRatios {
		shuffled := disorder(sorted, ratio, defaultK, 4)
		for _, strat := range []oostream.Strategy{oostream.StrategyInOrder, oostream.StrategyKSlack, oostream.StrategyNative} {
			r := runOne(q, oostream.Config{Strategy: strat, K: defaultK}, shuffled)
			t.AddRow(fmtPct(ratio), string(strat), fmtKevS(r.Throughput()), fmtInt(len(r.Matches)))
		}
	}
	return t
}

// E3ThroughputVsK measures CPU cost against the slack bound K at fixed
// disorder. Expected shape: kslack's cost grows with K (bigger buffer, more
// heap churn); native is largely insensitive to K for CPU.
func E3ThroughputVsK(s Scale) *Table {
	q := seqQuery()
	sorted := rfidSorted(s, 5)
	t := &Table{
		ID:      "E3",
		Title:   "Throughput vs. slack bound K",
		Anchor:  "paper §experiments: CPU cost vs. K-slack parameter",
		Columns: []string{"K(ms)", "strategy", "kev/s"},
	}
	for _, k := range []oostream.Time{100, 500, 1_000, 5_000, 10_000} {
		shuffled := disorder(sorted, 0.10, k, 6)
		for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative} {
			r := runOne(q, oostream.Config{Strategy: strat, K: k}, shuffled)
			t.AddRow(fmtInt(int(k)), string(strat), fmtKevS(r.Throughput()))
		}
	}
	return t
}

// E4MemoryVsK measures peak state (buffered events + stack instances)
// against K. Expected shape: kslack's buffer grows linearly with K; the
// native engine holds only pattern-relevant instances within window+K.
func E4MemoryVsK(s Scale) *Table {
	q := seqQuery()
	sorted := rfidSorted(s, 7)
	t := &Table{
		ID:      "E4",
		Title:   "Peak state vs. slack bound K",
		Anchor:  "paper §experiments: memory consumption vs. K",
		Columns: []string{"K(ms)", "strategy", "peak_state", "purged"},
	}
	for _, k := range []oostream.Time{100, 500, 1_000, 5_000, 10_000} {
		shuffled := disorder(sorted, 0.10, k, 8)
		for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative} {
			r := runOne(q, oostream.Config{Strategy: strat, K: k}, shuffled)
			t.AddRow(fmtInt(int(k)), string(strat), fmtInt(r.Metrics.PeakState), fmtU64(r.Metrics.Purged))
		}
	}
	t.Notes = append(t.Notes, "expected: kslack peak grows ~linearly in K; native stays near rate*(W+K) of relevant types only")
	return t
}

// E5Window measures the native engine's cost and state across window
// sizes. Expected shape: both CPU and memory grow with the window (more
// live instances, larger enumeration ranges).
func E5Window(s Scale) *Table {
	sorted := rfidSorted(s, 9)
	shuffled := disorder(sorted, 0.10, defaultK, 10)
	t := &Table{
		ID:      "E5",
		Title:   "Native cost vs. window size",
		Anchor:  "paper §experiments: window parameter sweep",
		Columns: []string{"window(ms)", "kev/s", "peak_state", "matches"},
	}
	for _, w := range []int{1_000, 5_000, 10_000, 50_000, 100_000} {
		q := oostream.MustCompile(fmt.Sprintf(
			"PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN %d", w),
			gen.RFIDSchema())
		r := runOne(q, oostream.Config{Strategy: oostream.StrategyNative, K: defaultK}, shuffled)
		t.AddRow(fmtInt(w), fmtKevS(r.Throughput()), fmtInt(r.Metrics.PeakState), fmtInt(len(r.Matches)))
	}
	return t
}

// E6PurgeAblation quantifies the purge algorithms: peak state and
// throughput with purging on (several cadences) and off. Expected shape:
// without purge, state grows with stream length; with purge it plateaus.
func E6PurgeAblation(s Scale) *Table {
	q := seqQuery()
	sorted := rfidSorted(s, 11)
	shuffled := disorder(sorted, 0.10, defaultK, 12)
	t := &Table{
		ID:      "E6",
		Title:   "State purging ablation (native)",
		Anchor:  "paper §state purging: minimizing memory consumption",
		Columns: []string{"purge_every", "kev/s", "peak_state", "purged"},
	}
	for _, pe := range []int{1, 16, 64, 256, -1} {
		label := fmtInt(pe)
		if pe < 0 {
			label = "never"
		}
		r := runOne(q, oostream.Config{Strategy: oostream.StrategyNative, K: defaultK, PurgeEvery: pe}, shuffled)
		t.AddRow(label, fmtKevS(r.Throughput()), fmtInt(r.Metrics.PeakState), fmtU64(r.Metrics.Purged))
	}
	t.Notes = append(t.Notes, "expected: peak_state explodes with purging disabled; cadence trades CPU for memory slack")
	return t
}

// E7OptAblation quantifies the sequence-scan optimization: triggering
// construction probes only for genuinely out-of-order insertions. A probe
// at an in-order mid-pattern insertion uselessly enumerates all
// earlier-position combinations, so the waste grows with pattern length;
// the experiment uses a four-step pattern to expose it. Expected shape:
// the optimized engine wins most at low disorder, where nearly every probe
// would be wasted.
func E7OptAblation(s Scale) *Table {
	q := oostream.MustCompile(
		"PATTERN SEQ(T1 v1, T2 v2, T3 v3, T4 v4) WHERE v1.id = v4.id WITHIN 400", nil)
	sorted := gen.Uniform(s.uniformN(), []string{"T1", "T2", "T3", "T4"}, 4, 10, 13)
	t := &Table{
		ID:      "E7",
		Title:   "Sequence-scan optimization ablation (native)",
		Anchor:  "paper §optimizations for sequence scan and construction",
		Columns: []string{"ooo%", "variant", "kev/s", "probes", "empty_probes"},
	}
	for _, ratio := range oooRatios {
		shuffled := disorder(sorted, ratio, 200, 14)
		opt := runOne(q, oostream.Config{Strategy: oostream.StrategyNative, K: 200}, shuffled)
		noopt := runOne(q, oostream.Config{Strategy: oostream.StrategyNative, K: 200, DisableTriggerOpt: true}, shuffled)
		t.AddRow(fmtPct(ratio), "optimized", fmtKevS(opt.Throughput()),
			fmtU64(opt.Metrics.Probes), fmtU64(opt.Metrics.EmptyProbes))
		t.AddRow(fmtPct(ratio), "probe-always", fmtKevS(noopt.Throughput()),
			fmtU64(noopt.Metrics.Probes), fmtU64(noopt.Metrics.EmptyProbes))
	}
	t.Notes = append(t.Notes,
		"probes/empty_probes are deterministic: the optimization's saving is the probe-always empty_probes surplus")
	return t
}

// E8Latency measures result latency (logical time between a match's last
// event timestamp and the clock at emission) across K. Expected shape:
// kslack pays ~K on every result; native pays nothing on in-order results
// and only the actual delay on disorder-affected ones.
func E8Latency(s Scale) *Table {
	q := seqQuery()
	sorted := rfidSorted(s, 15)
	t := &Table{
		ID:      "E8",
		Title:   "Result latency vs. slack bound K",
		Anchor:  "paper §experiments: output latency of levee vs. native",
		Columns: []string{"K(ms)", "strategy", "lat_mean(ms)", "lat_p99(ms)", "lat_max(ms)"},
	}
	for _, k := range []oostream.Time{500, 2_000, 10_000} {
		shuffled := disorder(sorted, 0.10, k, 16)
		for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative, oostream.StrategySpeculate} {
			r := runOne(q, oostream.Config{Strategy: strat, K: k}, shuffled)
			lat := r.Metrics.LogicalLat
			t.AddRow(fmtInt(int(k)), string(strat),
				fmtF1(lat.Mean()), fmtU64(lat.Quantile(0.99)), fmtU64(lat.Max()))
		}
	}
	t.Notes = append(t.Notes, "expected: kslack mean ~K; native mean << K (only disorder-affected results wait)")
	return t
}

// E9PatternLength measures throughput as the pattern grows from 2 to 6
// positive components over a uniform stream. Expected shape: cost grows
// with length (more stacks, deeper construction), for every strategy.
func E9PatternLength(s Scale) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Throughput vs. pattern length",
		Anchor:  "paper §experiments: query complexity scaling",
		Columns: []string{"len", "strategy", "kev/s", "matches"},
	}
	allTypes := []string{"T1", "T2", "T3", "T4", "T5", "T6"}
	events := gen.Uniform(s.uniformN(), allTypes, 4, 10, 17)
	shuffled := gen.Shuffle(events, gen.Disorder{Ratio: 0.10, MaxDelay: 200, Seed: 18})
	for n := 2; n <= 6; n++ {
		src := "PATTERN SEQ("
		for i := 0; i < n; i++ {
			if i > 0 {
				src += ", "
			}
			src += fmt.Sprintf("T%d v%d", i+1, i+1)
		}
		src += ") WHERE v1.id = v2.id WITHIN 400"
		q := oostream.MustCompile(src, nil)
		for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative} {
			r := runOne(q, oostream.Config{Strategy: strat, K: 200}, shuffled)
			t.AddRow(fmtInt(n), string(strat), fmtKevS(r.Throughput()), fmtInt(len(r.Matches)))
		}
	}
	return t
}

// E10Negation focuses on the shoplifting query: correctness, throughput,
// and sealing latency of every strategy under disorder. Expected shape:
// inorder produces false positives (premature output); native is exact with
// sealing latency ~K; speculate is exact after retractions with zero
// insert latency.
func E10Negation(s Scale) *Table {
	q := negQuery()
	sorted := rfidSorted(s, 19)
	shuffled := disorder(sorted, 0.10, defaultK, 20)
	truth := runOne(q, oostream.Config{Strategy: oostream.StrategyInOrder}, sorted)
	t := &Table{
		ID:      "E10",
		Title:   "Negation query under disorder",
		Anchor:  "paper §problem analysis + §sequence construction: negation needs sealing",
		Columns: []string{"strategy", "kev/s", "precision", "recall", "retracts", "lat_mean(ms)"},
	}
	for _, strat := range oostream.Strategies() {
		r := runOne(q, oostream.Config{Strategy: strat, K: defaultK}, shuffled)
		p, rec := precisionRecall(truth.Matches, r.Matches)
		t.AddRow(string(strat), fmtKevS(r.Throughput()), fmtF3(p), fmtF3(rec),
			fmtU64(r.Metrics.Retractions), fmtF1(r.Metrics.LogicalLat.Mean()))
	}
	return t
}

// E11Speculation measures the aggressive extension across disorder ratios:
// how much premature output it produces (retraction rate) and what it costs.
// Expected shape: retractions grow with disorder; throughput stays close to
// native; converged results stay exact (precision/recall 1).
func E11Speculation(s Scale) *Table {
	q := negQuery()
	sorted := rfidSorted(s, 21)
	truth := runOne(q, oostream.Config{Strategy: oostream.StrategyInOrder}, sorted)
	t := &Table{
		ID:      "E11",
		Title:   "Speculative output and compensation",
		Anchor:  "extension: aggressive strategy (ICDE'09 follow-up) vs. conservative sealing",
		Columns: []string{"ooo%", "inserts", "retracts", "retract_rate", "kev/s", "precision", "recall"},
	}
	for _, ratio := range oooRatios {
		shuffled := disorder(sorted, ratio, defaultK, 22)
		r := runOne(q, oostream.Config{Strategy: oostream.StrategySpeculate, K: defaultK}, shuffled)
		inserts := r.Metrics.Matches
		retracts := r.Metrics.Retractions
		rate := 0.0
		if inserts > 0 {
			rate = float64(retracts) / float64(inserts)
		}
		p, rec := precisionRecall(truth.Matches, r.Matches)
		t.AddRow(fmtPct(ratio), fmtU64(inserts), fmtU64(retracts), fmtF3(rate),
			fmtKevS(r.Throughput()), fmtF3(p), fmtF3(rec))
	}
	return t
}

// E12NetworkSim replaces synthetic disorder injection with the mechanistic
// delivery model of internal/netsim (link jitter + source failure bursts —
// the disorder causes the paper's introduction names) and asks the
// provisioning question a deployment faces: how large must K be, relative
// to the realized delay distribution, for each strategy to stay exact, and
// what does each K cost in latency and drops. Expected shape: K at the
// realized max keeps everyone exact; K at p99 drops the burst tail (late
// events) and costs recall for all strategies equally; native's latency
// advantage over kslack persists at every K.
func E12NetworkSim(s Scale) *Table {
	q := seqQuery()
	sorted := rfidSorted(s, 23)
	delivered, delays, prof, err := netsim.Deliver(sorted, netsim.Config{
		Sources: 8,
		Link:    netsim.DefaultLink(),
		Failure: netsim.FailureConfig{MTBF: 60_000, OutageMean: 2_000},
		Seed:    24,
	})
	if err != nil {
		panic(err) // static config; cannot fail
	}
	truth := runOne(q, oostream.Config{Strategy: oostream.StrategyInOrder}, sorted)
	t := &Table{
		ID:      "E12",
		Title:   "Strategies under simulated network delivery",
		Anchor:  "paper §introduction: disorder from network latency and machine failure (substituted trace)",
		Columns: []string{"K", "strategy", "kev/s", "late", "precision", "recall", "lat_mean(ms)"},
		Notes: []string{
			"delivery profile: " + prof.String(),
		},
	}
	for _, k := range []oostream.Time{prof.DelayP99, prof.MaxDelay} {
		label := fmt.Sprintf("p99(%d)", k)
		if k == prof.MaxDelay {
			label = fmt.Sprintf("max(%d)", k)
		}
		_ = netsim.ExceedingK(delays, k)
		for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative, oostream.StrategySpeculate} {
			r := runOne(q, oostream.Config{Strategy: strat, K: k}, delivered)
			p, rec := precisionRecall(truth.Matches, r.Matches)
			t.AddRow(label, string(strat), fmtKevS(r.Throughput()), fmtU64(r.Metrics.EventsLate),
				fmtF3(p), fmtF3(rec), fmtF1(r.Metrics.LogicalLat.Mean()))
		}
	}
	return t
}

// E13Partitioned measures the key-partitioned scale-out extension: the
// shoplifting query is equality-linked on the item id, so the stream can
// be hash-partitioned and matched by independent engines. Sequential
// execution isolates the bookkeeping overhead of partitioning; per-shard
// peak state shows the memory split a real deployment would get per core.
// Results are checked identical to the single engine's.
func E13Partitioned(s Scale) *Table {
	q := negQuery()
	sorted := rfidSorted(s, 25)
	shuffled := disorder(sorted, 0.10, defaultK, 26)
	single := runOne(q, oostream.Config{Strategy: oostream.StrategyNative, K: defaultK}, shuffled)
	t := &Table{
		ID:      "E13",
		Title:   "Key-partitioned scale-out (native, sequential shards)",
		Anchor:  "extension: hash partitioning on the equality-linked attribute",
		Columns: []string{"shards", "kev/s", "exact", "peak_state_total", "peak_per_shard"},
	}
	t.AddRow("1 (unsharded)", fmtKevS(single.Throughput()), "-", fmtInt(single.Metrics.PeakState), fmtInt(single.Metrics.PeakState))
	for _, shards := range []int{2, 4, 8, 16} {
		en, err := oostream.NewEngine(q, oostream.Config{K: defaultK,
			Partition: oostream.Partition{Attr: "id", Shards: shards}})
		if err != nil {
			panic(err) // query is statically partitionable
		}
		start := time.Now()
		got := en.ProcessAll(shuffled)
		elapsed := time.Since(start)
		exact, _ := oostream.SameResults(single.Matches, got)
		m := en.Metrics()
		t.AddRow(fmtInt(shards), fmtKevS(float64(len(shuffled))/elapsed.Seconds()),
			fmt.Sprintf("%v", exact), fmtInt(m.PeakState), fmtInt(m.PeakState/shards))
	}
	t.Notes = append(t.Notes, "sequential shards isolate partitioning overhead; goroutine-per-shard execution is in internal/shard.Parallel")
	return t
}

// E14KeyCardinality measures the key-partitioned stacks optimization: the
// native engine automatically keys its active instance stacks by the
// equality-linked attribute (here the item id), so construction and
// negation probes touch one key group instead of every instance in the
// window. The sweep varies the number of distinct ids at fixed disorder and
// compares against the same engine with keying disabled. Expected shape:
// the keyed win grows with cardinality (each group shrinks); result sets
// are identical at every point.
func E14KeyCardinality(s Scale) *Table {
	q := oostream.MustCompile(
		"PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e) WHERE s.id = e.id AND s.id = c.id WITHIN 400", nil)
	t := &Table{
		ID:      "E14",
		Title:   "Keyed-stacks optimization vs. key cardinality (native)",
		Anchor:  "extension: SASE partitioned stacks (SIGMOD'06) under out-of-order arrival",
		Columns: []string{"ids", "variant", "kev/s", "exact", "peak_groups", "peak_state"},
	}
	for _, ids := range []int{1, 10, 100, 1000} {
		sorted := gen.Uniform(s.uniformN(), []string{"SHELF", "COUNTER", "EXIT"}, ids, 10, int64(27+ids))
		shuffled := disorder(sorted, 0.10, 200, 28)
		keyed := runOne(q, oostream.Config{Strategy: oostream.StrategyNative, K: 200}, shuffled)
		unkeyed := runOne(q, oostream.Config{Strategy: oostream.StrategyNative, K: 200, DisableKeyedStacks: true}, shuffled)
		exact, _ := oostream.SameResults(unkeyed.Matches, keyed.Matches)
		t.AddRow(fmtInt(ids), "keyed", fmtKevS(keyed.Throughput()),
			fmt.Sprintf("%v", exact), fmtInt(keyed.Metrics.PeakKeyGroups), fmtInt(keyed.Metrics.PeakState))
		t.AddRow(fmtInt(ids), "unkeyed", fmtKevS(unkeyed.Throughput()),
			"-", fmtInt(unkeyed.Metrics.PeakKeyGroups), fmtInt(unkeyed.Metrics.PeakState))
	}
	t.Notes = append(t.Notes,
		"expected: keyed throughput pulls ahead as cardinality grows (construction walks one key group); result sets identical")
	return t
}

// E16Observability prices the live observability layer on the native
// engine: a registry-bound metric series, then a trace hook on top,
// against the uninstrumented engine. Counters are single-writer atomics
// and the nil trace hook is one predictable branch, so the expected shape
// is overhead within a few percent at both steps.
func E16Observability(s Scale) *Table {
	q := seqQuery()
	events := disorder(rfidSorted(s, 61), 0.20, defaultK, 62)
	t := &Table{
		ID:      "E16",
		Title:   "Observability overhead (native engine)",
		Anchor:  "extension: live metrics registry + trace hooks behind Config",
		Columns: []string{"instrumentation", "kev/s", "overhead%"},
	}
	modes := []string{"off", "registry", "registry+trace"}
	configs := make([]oostream.Config, len(modes))
	for i, mode := range modes {
		cfg := oostream.Config{Strategy: oostream.StrategyNative, K: defaultK}
		switch mode {
		case "registry":
			cfg.Observer = oostream.NewObserver()
		case "registry+trace":
			cfg.Observer = oostream.NewObserver()
			cfg.Trace = oostream.NewFlightRecorder(256)
		}
		configs[i] = cfg
	}
	// The modes are interleaved rep by rep and the best wall time per mode
	// kept, so slow drift in machine load hits every mode alike instead of
	// masquerading as instrumentation cost.
	const reps = 9
	best := make([]time.Duration, len(modes))
	for i := range best {
		best[i] = -1
	}
	for rep := 0; rep < reps; rep++ {
		for i := range modes {
			en := oostream.MustNewEngine(q, configs[i])
			start := time.Now()
			en.ProcessAll(events)
			elapsed := time.Since(start)
			if best[i] < 0 || elapsed < best[i] {
				best[i] = elapsed
			}
		}
	}
	base := float64(len(events)) / best[0].Seconds()
	for i, mode := range modes {
		tput := float64(len(events)) / best[i].Seconds()
		var over float64
		if i > 0 && base > 0 {
			over = (1 - tput/base) * 100
		}
		t.AddRow(mode, fmtKevS(tput), fmtF1(over))
	}
	t.Notes = append(t.Notes,
		"expected: a few percent at most; series counters are uncontended atomics, the trace fast path is one branch")
	return t
}

// E18Batch prices the batched admission path: the native engine driven
// through ProcessBatch at sweep batch sizes against the per-event
// degenerate case (batch=1), with key-partitioned stacks on and off. The
// batch entry amortizes purge scans and gauge publication across the
// batch; output is identical to per-event processing by the
// BatchProcessor contract (proved by internal/difftest.RunBatch), and each
// row re-asserts result equality against the batch=1 run.
func E18Batch(s Scale) *Table {
	q := seqQuery()
	events := disorder(rfidSorted(s, 71), 0.20, defaultK, 72)
	t := &Table{
		ID:      "E18",
		Title:   "Batched admission throughput vs. batch size",
		Anchor:  "extension: first-class ProcessBatch with batch≡per-event semantics",
		Columns: []string{"batch", "variant", "kev/s", "speedup", "exact"},
	}
	sizes := []int{1, 16, 256, 4096}
	for _, mode := range []string{"keyed", "unkeyed"} {
		cfg := oostream.Config{Strategy: oostream.StrategyNative, K: defaultK,
			DisableKeyedStacks: mode == "unkeyed"}
		// Sizes are interleaved rep by rep and the best wall time per size
		// kept (the E16 discipline), so machine-load drift hits every size
		// alike instead of masquerading as batching gain.
		const reps = 7
		best := make([]time.Duration, len(sizes))
		for i := range best {
			best[i] = -1
		}
		results := make([][]oostream.Match, len(sizes))
		for rep := 0; rep < reps; rep++ {
			for i, size := range sizes {
				en := oostream.MustNewEngine(q, cfg)
				start := time.Now()
				var ms []oostream.Match
				for lo := 0; lo < len(events); lo += size {
					hi := lo + size
					if hi > len(events) {
						hi = len(events)
					}
					ms = append(ms, en.ProcessBatch(events[lo:hi])...)
				}
				ms = append(ms, en.Flush()...)
				elapsed := time.Since(start)
				if best[i] < 0 || elapsed < best[i] {
					best[i] = elapsed
				}
				results[i] = ms
			}
		}
		base := float64(len(events)) / best[0].Seconds()
		for i, size := range sizes {
			tput := float64(len(events)) / best[i].Seconds()
			exact, _ := oostream.SameResults(results[0], results[i])
			t.AddRow(fmtInt(size), mode, fmtKevS(tput),
				fmt.Sprintf("%.2f", tput/base), fmt.Sprintf("%v", exact))
		}
	}
	t.Notes = append(t.Notes,
		"expected: keyed throughput grows with batch size as purge/gauge amortization kicks in, flattening once per-event admission dominates; exact stays true at every size",
		"shard-parallel scaling of the batched ring handoff is measured by BenchmarkE18BatchParallel (needs spare cores to show >1x)")
	return t
}
