package bench

import (
	"fmt"
	"time"

	"oostream"
)

// E22LatencyAttribution prices the wall-clock latency-attribution sampler
// (DESIGN.md §15) on the native engine: sampling off against 1-in-256 and
// 1-in-16 deterministic sampling over a disordered workload. The off path
// is a single masked-compare branch per event and allocates nothing (the
// root-level allocation test pins that to exactly zero), so the expected
// shape is overhead within noise at 1-in-256 and at most a few percent at
// 1-in-16. Sampled rows also report the wall-latency quantiles the sampler
// measured, which is how recorded baselines (BENCH_native.json) carry
// end-to-end p50/p95/p99 wall latency; every sampled row re-asserts result
// equality against the off run (sampling must never perturb matches).
func E22LatencyAttribution(s Scale) *Table {
	q := seqQuery()
	events := disorder(rfidSorted(s, 91), 0.20, defaultK, 92)
	t := &Table{
		ID:      "E22",
		Title:   "Wall-clock latency attribution overhead (native engine)",
		Anchor:  "extension: sampled per-event stage spans + SLO burn tracking behind Config.Latency",
		Columns: []string{"sampling", "kev/s", "overhead%", "wall_p50_us", "wall_p95_us", "wall_p99_us", "spans", "exact"},
	}
	every := []int{0, 256, 16}
	labels := []string{"off", "1/256", "1/16"}
	// The modes are interleaved rep by rep and the best wall time per mode
	// kept (the E16 discipline), so slow drift in machine load hits every
	// mode alike instead of masquerading as sampler cost.
	const reps = 9
	best := make([]time.Duration, len(every))
	for i := range best {
		best[i] = -1
	}
	results := make([][]oostream.Match, len(every))
	reports := make([]*oostream.LatencyReport, len(every))
	for rep := 0; rep < reps; rep++ {
		for i, n := range every {
			cfg := oostream.Config{Strategy: oostream.StrategyNative, K: defaultK,
				Latency: oostream.Latency{SampleEvery: n}}
			en := oostream.MustNewEngine(q, cfg)
			start := time.Now()
			ms := en.ProcessAll(events)
			elapsed := time.Since(start)
			if best[i] < 0 || elapsed < best[i] {
				best[i] = elapsed
			}
			results[i] = ms
			reports[i] = en.LatencyReport()
		}
	}
	base := float64(len(events)) / best[0].Seconds()
	for i, label := range labels {
		tput := float64(len(events)) / best[i].Seconds()
		var over float64
		if i > 0 && base > 0 {
			over = (1 - tput/base) * 100
		}
		wall := []string{"-", "-", "-", "-"}
		exact := "-"
		if r := reports[i]; r != nil {
			wall = []string{fmtU64(r.Wall.P50Us), fmtU64(r.Wall.P95Us), fmtU64(r.Wall.P99Us),
				fmtU64(r.SpansSampled)}
			ok, _ := oostream.SameResults(results[0], results[i])
			exact = fmt.Sprintf("%v", ok)
		}
		t.AddRow(label, fmtKevS(tput), fmtF1(over), wall[0], wall[1], wall[2], wall[3], exact)
	}
	t.Notes = append(t.Notes,
		"expected: 1/256 within noise of off (≤1%), 1/16 a few percent; exact stays true — sampling never changes matches",
		"wall quantiles are µs over sampled spans only; the off row has none by construction")
	return t
}
