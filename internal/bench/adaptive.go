package bench

import (
	"fmt"
	"sort"
	"time"

	"oostream"
	"oostream/internal/netsim"
)

// E20Adaptive is the adaptive-disorder-control experiment: a two-phase
// drifting network (quiet, then congested) defeats every static K — a K
// sized for the quiet phase drops the congested tail, a K sized for the
// congested phase buffers the quiet majority of the stream far longer
// than needed. The adaptive controller re-derives K from the observed lag
// quantile, so it should hold BOTH a low drop rate (near the
// over-provisioned static) and a low mean buffer occupancy (near the
// under-provisioned static). The hybrid row shows the SLO-driven
// meta-engine riding the same controller.
//
// All rows run the kslack strategy (the reorder buffer makes occupancy
// directly comparable) except the hybrid row. Occupancy is StateSize
// sampled every 64 events.
func E20Adaptive(s Scale) *Table {
	q := seqQuery()
	sorted := rfidSorted(s, 41)
	var horizon oostream.Time
	if len(sorted) > 0 {
		horizon = sorted[len(sorted)-1].TS
	}
	mid := horizon / 2
	cfgNet := netsim.Config{
		Sources: 8,
		Link:    netsim.DefaultLink(),
		Drift: &netsim.DriftConfig{
			Phases: []netsim.Phase{
				{Until: mid, Link: netsim.LinkConfig{BaseDelay: 5, JitterMean: 10, HeavyTailP: 0.02, HeavyTailX: 10}},
				{Until: 0, Link: netsim.LinkConfig{BaseDelay: 10, JitterMean: 300, HeavyTailP: 0.05, HeavyTailX: 10}},
			},
			BurstP:       0.001,
			BurstMeanLen: 30,
			BurstX:       4,
		},
		Seed: 42,
	}
	delivered, delays, prof, err := netsim.Deliver(sorted, cfgNet)
	if err != nil {
		panic(err) // static config; cannot fail
	}

	// Static candidates: each phase's own p99 (what an operator tuning on
	// that phase alone would pick), the whole-trace p99 (the best single-K
	// compromise hindsight could offer), and the realized maximum (loses
	// nothing).
	kQuiet := phaseP99(delivered, delays, mid, false)
	kCongested := phaseP99(delivered, delays, mid, true)
	kGlobal := prof.DelayP99
	kMax := prof.MaxDelay

	t := &Table{
		ID:      "E20",
		Title:   "Adaptive disorder control under drifting delay (kslack)",
		Anchor:  "extension: dynamic K vs. static K when the delay distribution is non-stationary",
		Columns: []string{"config", "kev/s", "drop%", "shed", "mean_buf", "peak_state", "final_k", "max_k"},
		Notes: []string{
			"delivery profile: " + prof.String(),
			fmt.Sprintf("phase boundary at ts=%d; static candidates: quiet-p99=%d, congested-p99=%d, global-p99=%d, max=%d", mid, kQuiet, kCongested, kGlobal, kMax),
			"hybrid mean_buf/peak_state include its 2·window replay tail, not just reordering state",
		},
	}

	// The controller tracks p99.5 with a 20% margin, re-deriving every 32
	// observations; growth is immediate but shrinking waits out 6 agreeing
	// windows so inter-burst lulls do not drag K into the next burst.
	adaptiveCfg := oostream.Adaptive{
		Enabled:       true,
		InitialK:      kQuiet,
		Quantile:      0.995,
		Margin:        1.2,
		MinK:          1,
		DecisionEvery: 32,
		GrowAfter:     1,
		ShrinkAfter:   6,
	}
	rows := []struct {
		label string
		cfg   oostream.Config
	}{
		{fmt.Sprintf("static K=%d (quiet p99)", kQuiet), oostream.Config{Strategy: oostream.StrategyKSlack, K: kQuiet}},
		{fmt.Sprintf("static K=%d (congested p99)", kCongested), oostream.Config{Strategy: oostream.StrategyKSlack, K: kCongested}},
		{fmt.Sprintf("static K=%d (global p99)", kGlobal), oostream.Config{Strategy: oostream.StrategyKSlack, K: kGlobal}},
		{fmt.Sprintf("static K=%d (max delay)", kMax), oostream.Config{Strategy: oostream.StrategyKSlack, K: kMax}},
		{"adaptive (seeded at quiet p99)", oostream.Config{Strategy: oostream.StrategyKSlack, K: kQuiet, Adaptive: adaptiveCfg}},
		{"hybrid adaptive (SLO latency)", oostream.Config{Strategy: oostream.StrategyHybrid, K: kQuiet,
			Adaptive: func() oostream.Adaptive {
				ac := adaptiveCfg
				ac.SLO = oostream.SLO{MaxLatency: kMax / 2}
				return ac
			}()}},
	}
	for _, row := range rows {
		r, meanBuf := runSampled(q, row.cfg, delivered)
		dropped := r.Metrics.EventsLate + r.Metrics.SheddedEvents
		t.AddRow(row.label, fmtKevS(r.Throughput()),
			fmtF1(100*float64(dropped)/float64(len(delivered))),
			fmtU64(r.Metrics.SheddedEvents),
			fmtF1(meanBuf), fmtInt(r.Metrics.PeakState),
			fmtInt(int(r.Metrics.CurrentK)), fmtInt(int(r.Metrics.MaxK)))
	}
	return t
}

// phaseP99 is the 99th delay percentile among deliveries whose event was
// produced on one side of the phase boundary — the bound an operator would
// derive from that phase's telemetry alone.
func phaseP99(delivered []oostream.Event, delays []oostream.Time, boundary oostream.Time, after bool) oostream.Time {
	var phase []oostream.Time
	for i, e := range delivered {
		if (e.TS >= boundary) == after {
			phase = append(phase, delays[i])
		}
	}
	if len(phase) == 0 {
		return 1
	}
	sort.Slice(phase, func(a, b int) bool { return phase[a] < phase[b] })
	k := phase[len(phase)*99/100]
	if k < 1 {
		k = 1
	}
	return k
}

// runSampled drives a fresh engine per-event, sampling StateSize every 64
// events for the mean occupancy the throughput tables can't show.
func runSampled(q *oostream.Query, cfg oostream.Config, events []oostream.Event) (Result, float64) {
	cfg.Observer = Observer
	en := oostream.MustNewEngine(q, cfg)
	var matches []oostream.Match
	var sumState, samples int64
	start := time.Now()
	for i, e := range events {
		matches = append(matches, en.Process(e)...)
		if i%64 == 0 {
			sumState += int64(en.StateSize())
			samples++
		}
	}
	matches = append(matches, en.Flush()...)
	elapsed := time.Since(start)
	mean := 0.0
	if samples > 0 {
		mean = float64(sumState) / float64(samples)
	}
	return Result{
		Strategy: string(cfg.Strategy),
		Matches:  matches,
		Elapsed:  elapsed,
		Metrics:  en.Metrics(),
		Events:   len(events),
	}, mean
}
