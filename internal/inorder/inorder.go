// Package inorder implements the state-of-the-art SASE-style sequence scan
// and construction engine the paper uses as its point of departure. It is
// exactly correct for streams that arrive in timestamp order — the oracle
// cross-checks that in tests — and it is the engine whose misbehaviour on
// out-of-order input the paper analyzes: its stacks record arrival order,
// its predecessor (RIP) pointers capture "most recent at arrival", and its
// purge trusts the arrival clock, so disorder produces missed matches and,
// for negation, premature (false-positive) output.
//
// The implementation deliberately preserves those assumptions rather than
// repairing them; the repairs are the contribution of the native engine in
// internal/core.
package inorder

import (
	"container/heap"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/metrics"
	"oostream/internal/obsv"
	"oostream/internal/plan"
	"oostream/internal/provenance"
)

// instance is one stack entry of the classic (append-only) AIS.
type instance struct {
	ev event.Event
	// rip is the absolute index (offset by the stack's purge base) of the
	// top of the previous stack at push time; -1 when that stack was empty.
	rip int
}

// stack is an append-only active instance stack with prefix purging.
type stack struct {
	items []instance
	// base counts purged items so absolute indices stay stable.
	base int
}

func (s *stack) push(e event.Event, rip int) {
	s.items = append(s.items, instance{ev: e, rip: rip})
}

// topIndex returns the absolute index of the top, or -1 when empty.
func (s *stack) topIndex() int { return s.base + len(s.items) - 1 }

// at returns the instance at absolute index.
func (s *stack) at(abs int) instance { return s.items[abs-s.base] }

func (s *stack) len() int { return len(s.items) }

// purgeWhile removes the longest prefix whose events satisfy pred.
func (s *stack) purgeWhile(pred func(event.Event) bool) int {
	cut := 0
	for cut < len(s.items) && pred(s.items[cut].ev) {
		cut++
	}
	if cut == 0 {
		return 0
	}
	n := copy(s.items, s.items[cut:])
	s.items = s.items[:n]
	s.base += cut
	return cut
}

// Engine is the classic in-order SSC operator.
type Engine struct {
	plan   *plan.Plan
	stacks []*stack
	// negStores holds negative events (passing local predicates) per
	// negation, in arrival order (== timestamp order for in-order input).
	negStores [][]event.Event
	// clock is the engine's notion of current time: the timestamp of the
	// most recent arrival (NOT the max — this engine trusts arrival order).
	clock   event.Time
	arrival uint64
	met     metrics.Collector
	maxSeen event.Time
	// trace observes lifecycle steps when non-nil (nil-checked per site).
	trace     obsv.TraceHook
	traceName string
	// lat, when non-nil, stamps wall-clock stage boundaries on sampled
	// event spans.
	lat *obsv.LatencySampler
	// pending holds full bindings waiting for their negation gaps to close
	// (only trailing negation ever has to wait under the in-order
	// assumption; the queue is keyed by seal timestamp).
	pending pendingHeap

	// prov enables lineage records on emitted matches (flag-checked per
	// site, like trace). trig*/visited carry the current trigger through
	// construction; lineageLive/lineageBytes track retained records.
	prov         bool
	trigSeq      event.Seq
	trigTS       event.Time
	visited      int
	lineageLive  int
	lineageBytes int
}

// pendingMatch is a binding whose negation gaps close at sealTS. prov is
// its lineage record, nil unless provenance is enabled.
type pendingMatch struct {
	events  []event.Event
	sealTS  event.Time
	madeSeq uint64 // arrival counter when the binding completed
	prov    *provenance.Record
}

// pendingHeap is a min-heap on sealTS.
type pendingHeap []pendingMatch

func (h pendingHeap) Len() int           { return len(h) }
func (h pendingHeap) Less(i, j int) bool { return h[i].sealTS < h[j].sealTS }
func (h pendingHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)        { *h = append(*h, x.(pendingMatch)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	old[n-1] = pendingMatch{}
	*h = old[:n-1]
	return out
}

var _ engine.Engine = (*Engine)(nil)

// New builds an in-order engine for the plan.
func New(p *plan.Plan) *Engine {
	en := &Engine{
		plan:      p,
		stacks:    make([]*stack, p.Len()),
		negStores: make([][]event.Event, len(p.Negatives)),
	}
	for i := range en.stacks {
		en.stacks[i] = &stack{}
	}
	return en
}

// Name implements engine.Engine.
func (en *Engine) Name() string { return "inorder" }

// Observe implements engine.Observable.
func (en *Engine) Observe(s *obsv.Series, hook obsv.TraceHook) {
	en.met.Bind(s)
	en.trace = hook
	if s != nil && s.Name() != "" {
		en.traceName = s.Name()
	} else if en.traceName == "" {
		en.traceName = en.Name()
	}
}

// EnableProvenance implements engine.Provenancer.
func (en *Engine) EnableProvenance() { en.prov = true }

// Metrics implements engine.Engine.
func (en *Engine) Metrics() metrics.Snapshot { return en.met.Snapshot() }

// StateSnapshot implements engine.Introspectable. The in-order engine
// trusts arrival order, so its safe clock IS its clock.
func (en *Engine) StateSnapshot() *provenance.StateSnapshot {
	name := en.traceName
	if name == "" {
		name = en.Name()
	}
	s := &provenance.StateSnapshot{
		Engine:        name,
		Started:       en.arrival > 0,
		Clock:         en.clock,
		Safe:          en.clock,
		PurgeFrontier: en.clock - en.plan.Window,
		StackDepths:   make([]int, len(en.stacks)),
		NegStoreSizes: make([]int, len(en.negStores)),
		Pending:       en.pending.Len(),
		Lineage: provenance.LineageStats{
			Enabled: en.prov,
			Live:    en.lineageLive,
			Bytes:   en.lineageBytes,
		},
	}
	for i, st := range en.stacks {
		s.StackDepths[i] = st.len()
	}
	for i, ns := range en.negStores {
		s.NegStoreSizes[i] = len(ns)
	}
	return s
}

// StateSize implements engine.Engine.
func (en *Engine) StateSize() int {
	total := 0
	for _, s := range en.stacks {
		total += s.len()
	}
	for _, ns := range en.negStores {
		total += len(ns)
	}
	return total + en.pending.Len()
}

// Process implements engine.Engine.
func (en *Engine) Process(e event.Event) []plan.Match {
	out := en.processOne(e, nil)
	en.lat.StageEnd(e.Seq, obsv.StageConstruct)
	en.met.SetLiveState(en.StateSize())
	if en.prov {
		en.met.SetLineageRetained(en.lineageLive, en.lineageBytes)
	}
	return out
}

// SetLatencySampler implements engine.LatencySampled.
func (en *Engine) SetLatencySampler(ls *obsv.LatencySampler) { en.lat = ls }

// ProcessBatch implements engine.BatchProcessor. The classic engine's
// clock is the latest arrival's timestamp — it can move backwards — so its
// purge horizon is semantics-bearing (a deferred purge would retain
// instances a regressed clock then wrongly re-binds). The batch path
// therefore keeps the full per-event pipeline including the purge and only
// amortizes the output slice and gauge publication.
func (en *Engine) ProcessBatch(batch []event.Event) []plan.Match {
	var out []plan.Match
	for i := range batch {
		out = en.processOne(batch[i], out)
		en.lat.StageEnd(batch[i].Seq, obsv.StageConstruct)
	}
	en.met.SetLiveState(en.StateSize())
	if en.prov {
		en.met.SetLineageRetained(en.lineageLive, en.lineageBytes)
	}
	return out
}

// processOne is the per-event pipeline shared by Process and ProcessBatch,
// everything except gauge publication.
func (en *Engine) processOne(e event.Event, out []plan.Match) []plan.Match {
	en.arrival++
	if !en.plan.Relevant(e.Type) {
		en.met.IncIrrelevant()
		return out
	}
	var lag event.Time
	if e.TS < en.maxSeen {
		lag = en.maxSeen - e.TS
	}
	en.met.IncIn(e.TS < en.maxSeen, lag)
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpAdmit, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq})
	}
	if e.TS > en.maxSeen {
		en.maxSeen = e.TS
	}
	// The classic engine trusts arrival order: its clock is the latest
	// arrival's timestamp, out-of-order or not.
	en.clock = e.TS

	if en.plan.ConstFalse {
		return out
	}

	for _, negIdx := range en.plan.NegativesForType(e.Type) {
		if plan.EvalLocal(en.plan.Negatives[negIdx].Local, e, en.met.IncPredError) {
			en.negStores[negIdx] = append(en.negStores[negIdx], e)
		}
	}
	for _, pos := range en.plan.PositionsForType(e.Type) {
		if !plan.EvalLocal(en.plan.Positives[pos].Local, e, en.met.IncPredError) {
			continue
		}
		rip := -1
		if pos > 0 {
			rip = en.stacks[pos-1].topIndex()
		}
		en.stacks[pos].push(e, rip)
		if en.trace != nil {
			en.trace.Trace(obsv.TraceEvent{Op: obsv.OpStackPush, Engine: en.traceName, Type: e.Type, TS: e.TS, Seq: e.Seq, N: pos})
		}
		if pos == en.plan.Len()-1 {
			out = append(out, en.construct(e, rip)...)
		}
	}
	out = en.drainPending(out)
	en.purge()
	return out
}

// construct enumerates matches ending in the just-pushed last-position
// event by the classic RIP walk: at each earlier position, candidates are
// the instances at or below the RIP recorded by the successor.
func (en *Engine) construct(last event.Event, rip int) []plan.Match {
	n := en.plan.Len()
	binding := make([]event.Event, n)
	binding[n-1] = last
	if en.prov {
		en.trigSeq = last.Seq
		en.trigTS = last.TS
		en.visited = 0
	}
	var out []plan.Match
	boundMask := uint64(1) << uint(n-1)
	if n == 1 {
		if en.plan.CrossSatisfiedAt(0, boundMask, binding, en.met.IncPredError) {
			out = en.emit(binding, out)
		}
		return out
	}
	var walk func(pos, limit int, mask uint64)
	walk = func(pos, limit int, mask uint64) {
		s := en.stacks[pos]
		for abs := limit; abs >= s.base; abs-- {
			inst := s.at(abs)
			if en.prov {
				en.visited++
			}
			// Window check against the last event's timestamp. For genuinely
			// in-order streams every instance below the RIP is earlier, so
			// this check only trims the window; on disordered input it is
			// the engine's only (insufficient) guard.
			span := binding[n-1].TS - inst.ev.TS
			if span > en.plan.Window {
				break // deeper instances arrived earlier; in-order means older
			}
			if inst.ev.TS >= binding[pos+1].TS {
				// Sequencing is strict on timestamps: a candidate must be
				// strictly earlier than its successor, not merely pushed
				// before it. Equal-timestamp ties (and, for repeated-type
				// patterns, the successor itself, reachable through its own
				// just-recorded RIP) land here and must be skipped; on
				// disordered input this is also the engine's (insufficient)
				// guard against inverted pairs.
				continue
			}
			binding[pos] = inst.ev
			m := mask | 1<<uint(pos)
			if !en.plan.CrossSatisfiedAt(pos, m, binding, en.met.IncPredError) {
				continue
			}
			if pos == 0 {
				out = en.emit(binding, out)
				continue
			}
			next := inst.rip
			top := en.stacks[pos-1].topIndex()
			if next > top {
				next = top
			}
			walk(pos-1, next, m)
		}
	}
	limit := rip
	if top := en.stacks[n-2].topIndex(); limit > top {
		limit = top
	}
	walk(n-2, limit, boundMask)
	return out
}

// emit handles a complete positive binding. Gaps that have already closed
// under the in-order clock are checked immediately; a binding with a still
// open gap (trailing negation) waits in the pending queue until the clock
// passes its seal timestamp.
func (en *Engine) emit(binding []event.Event, out []plan.Match) []plan.Match {
	events := make([]event.Event, len(binding))
	copy(events, binding)
	sealTS := en.clock // no negation: sealed now
	for negIdx := range en.plan.Negatives {
		_, hi := en.plan.GapBounds(negIdx, events)
		if hi > sealTS {
			sealTS = hi
		}
	}
	pm := pendingMatch{events: events, sealTS: sealTS, madeSeq: en.arrival}
	if en.prov {
		pm.prov = &provenance.Record{
			Kind:       provenance.KindInsert,
			Events:     provenance.Refs(events),
			Shard:      -1,
			WindowLo:   events[0].TS,
			WindowHi:   events[0].TS + en.plan.Window,
			SealTS:     sealTS,
			TriggerSeq: en.trigSeq,
			TriggerTS:  en.trigTS,
			TriggerPos: len(events) - 1,
			Traversed:  en.visited,
		}
		en.met.IncLineage()
	}
	if sealTS <= en.clock {
		return en.finalize(pm, out)
	}
	if pm.prov != nil {
		en.lineageLive++
		en.lineageBytes += pm.prov.SizeBytes()
	}
	heap.Push(&en.pending, pm)
	return out
}

// popPending removes the minimum pending match, releasing its retained
// lineage accounting.
func (en *Engine) popPending() pendingMatch {
	pm := heap.Pop(&en.pending).(pendingMatch)
	if pm.prov != nil {
		en.lineageLive--
		en.lineageBytes -= pm.prov.SizeBytes()
	}
	return pm
}

// drainPending finalizes every pending binding whose seal timestamp the
// clock has reached.
func (en *Engine) drainPending(out []plan.Match) []plan.Match {
	for en.pending.Len() > 0 && en.pending[0].sealTS <= en.clock {
		out = en.finalize(en.popPending(), out)
	}
	return out
}

// finalize checks a binding against the negatives seen SO FAR (the in-order
// assumption — a late negative arriving afterwards is missed, producing the
// premature output the paper describes), projects, and emits.
func (en *Engine) finalize(pm pendingMatch, out []plan.Match) []plan.Match {
	for negIdx := range en.plan.Negatives {
		lo, hi := en.plan.GapBounds(negIdx, pm.events)
		for _, t := range en.negStores[negIdx] {
			if t.TS <= lo || t.TS >= hi {
				continue
			}
			if en.plan.NegMatches(negIdx, t, pm.events, en.met.IncPredError) {
				return out
			}
		}
	}
	fields, err := en.plan.Project(pm.events)
	if err != nil {
		en.met.IncPredError(err)
		return out
	}
	m := plan.Match{
		Kind:      plan.Insert,
		Events:    pm.events,
		Fields:    fields,
		EmitSeq:   event.Seq(en.arrival),
		EmitClock: en.clock,
	}
	if pm.prov != nil {
		pm.prov.EmitClock = en.clock
		m.Prov = pm.prov
	}
	en.met.AddMatch(false, en.clock-m.Last().TS, en.arrival-pm.madeSeq)
	if en.trace != nil {
		te := obsv.TraceEvent{Op: obsv.OpEmit, Engine: en.traceName, TS: m.Last().TS, Seq: m.EmitSeq, N: len(m.Events)}
		if m.Prov != nil {
			te.Match = m.Prov.MatchKey()
		}
		en.trace.Trace(te)
	}
	return append(out, m)
}

// purge removes state the in-order assumption says is dead: instances (and
// negatives) older than clock − Window can no longer combine with any
// future arrival, which the engine believes has timestamp >= clock.
func (en *Engine) purge() {
	horizon := en.clock - en.plan.Window
	purged := 0
	for _, s := range en.stacks {
		purged += s.purgeWhile(func(e event.Event) bool { return e.TS < horizon })
	}
	// A leading negation's gap reaches back to first.TS − W, and a future
	// binding can have first.TS as old as clock − W, so negatives stay
	// live for two windows.
	negHorizon := en.clock - 2*en.plan.Window
	for i, ns := range en.negStores {
		cut := 0
		for cut < len(ns) && ns[cut].TS < negHorizon {
			cut++
		}
		if cut > 0 {
			n := copy(ns, ns[cut:])
			en.negStores[i] = ns[:n]
			purged += cut
		}
	}
	if purged > 0 {
		en.met.ObservePurge(purged)
		if en.trace != nil {
			en.trace.Trace(obsv.TraceEvent{Op: obsv.OpPurge, Engine: en.traceName, TS: en.clock, N: purged})
		}
	}
}

// Advance implements engine.Advancer: a heartbeat carrying only a
// timestamp. Under the in-order assumption it moves the clock like an
// event would, sealing pending trailing-negation output and purging.
func (en *Engine) Advance(ts event.Time) []plan.Match {
	if ts > en.clock {
		en.clock = ts
	}
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpHeartbeat, Engine: en.traceName, TS: ts})
	}
	out := en.drainPending(nil)
	en.purge()
	en.met.SetLiveState(en.StateSize())
	return out
}

// Flush implements engine.Engine: end of stream means no further negative
// can arrive, so every pending binding is final-checked and emitted.
func (en *Engine) Flush() []plan.Match {
	var out []plan.Match
	for en.pending.Len() > 0 {
		out = en.finalize(en.popPending(), out)
	}
	en.met.SetLiveState(en.StateSize())
	if en.prov {
		en.met.SetLineageRetained(en.lineageLive, en.lineageBytes)
	}
	if en.trace != nil {
		en.trace.Trace(obsv.TraceEvent{Op: obsv.OpFlush, Engine: en.traceName, TS: en.clock})
	}
	return out
}
