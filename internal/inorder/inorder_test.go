package inorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

func compile(t *testing.T, src string) *plan.Plan {
	t.Helper()
	p, err := plan.ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// randomStream produces a sorted stream over the given types with an id
// attribute, for oracle comparisons.
func randomStream(rng *rand.Rand, n int, types []string, idRange int, maxGap int) []event.Event {
	events := make([]event.Event, n)
	ts := event.Time(0)
	for i := 0; i < n; i++ {
		ts += event.Time(rng.Intn(maxGap) + 1)
		events[i] = event.Event{
			Type:  types[rng.Intn(len(types))],
			TS:    ts,
			Seq:   event.Seq(i + 1),
			Attrs: event.Attrs{"id": event.Int(int64(rng.Intn(idRange)))},
		}
	}
	return events
}

func assertSameAsOracle(t *testing.T, p *plan.Plan, events []event.Event) {
	t.Helper()
	want := oracle.Matches(p, events)
	got := engine.Drain(New(p), events)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("engine disagrees with oracle (%d vs %d matches):\n%s", len(want), len(got), diff)
	}
}

func TestMatchesOracleOnSortedStreams(t *testing.T) {
	queries := []string{
		"PATTERN SEQ(A a, B b) WITHIN 50",
		"PATTERN SEQ(A a, B b, C c) WITHIN 80",
		"PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100",
		"PATTERN SEQ(A a, !(N n), B b) WHERE a.id = n.id WITHIN 60",
		"PATTERN SEQ(!(N n), A a, B b) WITHIN 60",
		"PATTERN SEQ(A a, B b, !(N n)) WITHIN 40",
		"PATTERN SEQ(T a, T b) WITHIN 30",
		"PATTERN SEQ(A a) WITHIN 10",
	}
	types := []string{"A", "B", "C", "N", "T"}
	for _, q := range queries {
		p := compile(t, q)
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			events := randomStream(rng, 120, types, 3, 8)
			t.Run(q, func(t *testing.T) { assertSameAsOracle(t, p, events) })
		}
	}
}

func TestOracleAgreementProperty(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WHERE a.id = b.id WITHIN 40")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		events := randomStream(rng, 80, []string{"A", "B", "N"}, 2, 6)
		want := oracle.Matches(p, events)
		got := engine.Drain(New(p), events)
		ok, _ := plan.SameResults(want, got)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMissesMatchesOnDisorderedInput(t *testing.T) {
	// The defining failure mode the paper analyzes: a late-arriving earlier
	// event never becomes a predecessor in the arrival-ordered stacks.
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	a := event.Event{Type: "A", TS: 10, Seq: 1}
	b := event.Event{Type: "B", TS: 20, Seq: 2}
	// In order: match found.
	if got := engine.Drain(New(p), []event.Event{a, b}); len(got) != 1 {
		t.Fatalf("in-order: %d matches", len(got))
	}
	// B before A (A out-of-order): the naive engine misses the match.
	if got := engine.Drain(New(p), []event.Event{b, a}); len(got) != 0 {
		t.Fatalf("disordered: naive engine should miss the match, got %v", got)
	}
}

func TestPrematureNegationOutputOnDisorderedInput(t *testing.T) {
	// A negative event arriving late is not seen at emission time: the
	// naive engine produces a false positive.
	p := compile(t, "PATTERN SEQ(A a, !(N n), B b) WITHIN 100")
	a := event.Event{Type: "A", TS: 10, Seq: 1}
	n := event.Event{Type: "N", TS: 15, Seq: 2}
	b := event.Event{Type: "B", TS: 20, Seq: 3}
	if got := engine.Drain(New(p), []event.Event{a, n, b}); len(got) != 0 {
		t.Fatalf("in-order negation: %v", got)
	}
	// N arrives after B: premature (incorrect) match.
	if got := engine.Drain(New(p), []event.Event{a, b, n}); len(got) != 1 {
		t.Fatalf("disordered negation: want premature match, got %v", got)
	}
}

func TestPurgeBoundsState(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 10")
	en := New(p)
	for i := 0; i < 1000; i++ {
		en.Process(event.Event{Type: "A", TS: event.Time(i * 5), Seq: event.Seq(i + 1)})
	}
	if st := en.StateSize(); st > 8 {
		t.Errorf("state grew to %d despite purge", st)
	}
	if s := en.Metrics(); s.Purged == 0 {
		t.Error("purge counter never incremented")
	}
}

func TestIrrelevantTypesSkipped(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 10")
	en := New(p)
	en.Process(event.Event{Type: "ZZZ", TS: 1, Seq: 1})
	s := en.Metrics()
	if s.EventsIn != 0 || s.Irrelevant != 1 {
		t.Errorf("irrelevant handling: %+v", s)
	}
	if en.StateSize() != 0 {
		t.Error("irrelevant event stored")
	}
}

func TestConstFalsePlanEmitsNothing(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a) WHERE 1 = 2 WITHIN 10")
	if got := engine.Drain(New(p), []event.Event{{Type: "A", TS: 1, Seq: 1}}); len(got) != 0 {
		t.Fatal("ConstFalse must suppress all output")
	}
}

func TestLocalPredicateFiltersAtInsertion(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WHERE a.x > 5 WITHIN 100")
	en := New(p)
	en.Process(event.New("A", 1, event.Attrs{"x": event.Int(3)}))
	if en.StateSize() != 0 {
		t.Error("event failing local predicate was stored")
	}
	en.Process(event.New("A", 2, event.Attrs{"x": event.Int(7)}))
	if en.StateSize() != 1 {
		t.Error("event passing local predicate was not stored")
	}
}

func TestMetricsLatencyZeroForImmediateEmit(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b) WITHIN 100")
	en := New(p)
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	out := en.Process(event.Event{Type: "B", TS: 20, Seq: 2})
	if len(out) != 1 {
		t.Fatal("no match")
	}
	s := en.Metrics()
	if s.LogicalLat.Max() != 0 {
		t.Errorf("immediate emission should have zero logical latency, got %d", s.LogicalLat.Max())
	}
}

func TestTrailingNegationWaitsForWindow(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b, !(N n)) WITHIN 20")
	en := New(p)
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	out := en.Process(event.Event{Type: "B", TS: 15, Seq: 2})
	if len(out) != 0 {
		t.Fatal("trailing negation must defer emission")
	}
	// N inside (15, 30) kills the match.
	en.Process(event.Event{Type: "N", TS: 20, Seq: 3})
	out = en.Process(event.Event{Type: "A", TS: 40, Seq: 4}) // advances clock past seal
	if len(out) != 0 {
		t.Fatalf("negative in trailing gap should suppress, got %v", out)
	}
	// Second run without the negative: emitted once the clock passes seal.
	en2 := New(p)
	en2.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	en2.Process(event.Event{Type: "B", TS: 15, Seq: 2})
	out = en2.Process(event.Event{Type: "A", TS: 40, Seq: 4})
	if len(out) != 1 {
		t.Fatalf("sealed match should emit, got %v", out)
	}
}

func TestFlushSealsTrailingNegation(t *testing.T) {
	p := compile(t, "PATTERN SEQ(A a, B b, !(N n)) WITHIN 100")
	en := New(p)
	en.Process(event.Event{Type: "A", TS: 10, Seq: 1})
	if out := en.Process(event.Event{Type: "B", TS: 15, Seq: 2}); len(out) != 0 {
		t.Fatal("should pend")
	}
	if out := en.Flush(); len(out) != 1 {
		t.Fatalf("Flush should seal, got %v", out)
	}
}
