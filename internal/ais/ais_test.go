package ais

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oostream/internal/event"
)

var seqCounter event.Seq

func ev(ts event.Time) event.Event {
	seqCounter++
	return event.Event{Type: "T", TS: ts, Seq: seqCounter}
}

func TestStackInsertKeepsOrder(t *testing.T) {
	a := New(1)
	for _, ts := range []event.Time{5, 1, 9, 3, 7, 3} {
		a.Insert(0, ev(ts))
	}
	s := a.Stack(0)
	if !s.IsSorted() {
		t.Fatalf("stack not sorted: %s", s)
	}
	if s.Len() != 6 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.At(0).Event.TS != 1 || s.Top().Event.TS != 9 {
		t.Errorf("bounds wrong: %s", s)
	}
}

func TestStackTiesOrderedBySeq(t *testing.T) {
	a := New(1)
	e1, e2 := ev(5), ev(5)
	a.Insert(0, e2) // later seq inserted first
	a.Insert(0, e1)
	s := a.Stack(0)
	if s.At(0).Event.Seq != e1.Seq || s.At(1).Event.Seq != e2.Seq {
		t.Errorf("ties not ordered by seq: %v, %v", s.At(0).Event, s.At(1).Event)
	}
}

func TestSearchHelpers(t *testing.T) {
	a := New(1)
	for _, ts := range []event.Time{10, 20, 20, 30} {
		a.Insert(0, ev(ts))
	}
	s := a.Stack(0)
	tests := []struct {
		ts                event.Time
		upper, firstAfter int
	}{
		{5, 0, 0},
		{10, 0, 1},
		{15, 1, 1},
		{20, 1, 3},
		{25, 3, 3},
		{30, 3, 4},
		{35, 4, 4},
	}
	for _, tt := range tests {
		if got := s.UpperBound(tt.ts); got != tt.upper {
			t.Errorf("UpperBound(%d) = %d, want %d", tt.ts, got, tt.upper)
		}
		if got := s.FirstAfter(tt.ts); got != tt.firstAfter {
			t.Errorf("FirstAfter(%d) = %d, want %d", tt.ts, got, tt.firstAfter)
		}
	}
	if got := s.LatestBefore(20); got == nil || got.Event.TS != 10 {
		t.Errorf("LatestBefore(20) = %v", got)
	}
	if got := s.LatestBefore(10); got != nil {
		t.Errorf("LatestBefore(10) = %v, want nil", got)
	}
	if got := s.LatestBefore(100); got == nil || got.Event.TS != 30 {
		t.Errorf("LatestBefore(100) = %v", got)
	}
}

func TestRIPInOrder(t *testing.T) {
	// Classic SASE: in-order arrivals; RIP = top of previous stack.
	a := New(3)
	a.Insert(0, ev(1))      // A@1
	a.Insert(0, ev(2))      // A@2
	b := a.Insert(1, ev(3)) // B@3 -> RIP A@2
	if b.RIP == nil || b.RIP.Event.TS != 2 {
		t.Fatalf("B RIP = %v", ripTS(b))
	}
	a.Insert(0, ev(4)) // A@4
	c := a.Insert(2, ev(5))
	if c.RIP == nil || c.RIP.Event.TS != 3 {
		t.Fatalf("C RIP = %v", ripTS(c))
	}
	if err := a.CheckRIPInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRIPNoViablePredecessor(t *testing.T) {
	a := New(2)
	b := a.Insert(1, ev(5)) // B before any A
	if b.RIP != nil {
		t.Fatalf("RIP should be nil, got %v", ripTS(b))
	}
	// A at the same timestamp is not viable (strict <).
	a.Insert(0, ev(5))
	if b.RIP != nil {
		t.Fatalf("same-ts A must not become RIP, got %v", ripTS(b))
	}
	// An earlier A is.
	a.Insert(0, ev(3))
	if b.RIP == nil || b.RIP.Event.TS != 3 {
		t.Fatalf("late-arriving earlier A should become RIP, got %v", ripTS(b))
	}
}

func TestRIPFixupOnOutOfOrderInsert(t *testing.T) {
	a := New(2)
	a.Insert(0, ev(1)) // A@1
	b1 := a.Insert(1, ev(4))
	b2 := a.Insert(1, ev(8))
	if b1.RIP.Event.TS != 1 || b2.RIP.Event.TS != 1 {
		t.Fatal("setup RIPs wrong")
	}
	// Late A@6: must become RIP of B@8 but not B@4.
	a.Insert(0, ev(6))
	if b1.RIP.Event.TS != 1 {
		t.Errorf("B@4 RIP = %v, want 1", ripTS(b1))
	}
	if b2.RIP.Event.TS != 6 {
		t.Errorf("B@8 RIP = %v, want 6", ripTS(b2))
	}
	// Late A@2: RIP of B@4 updates; B@8 keeps A@6.
	a.Insert(0, ev(2))
	if b1.RIP.Event.TS != 2 {
		t.Errorf("B@4 RIP = %v, want 2", ripTS(b1))
	}
	if b2.RIP.Event.TS != 6 {
		t.Errorf("B@8 RIP = %v, want 6", ripTS(b2))
	}
	if err := a.CheckRIPInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestFixupRunIsContiguousAndStops(t *testing.T) {
	a := New(2)
	a.Insert(0, ev(5)) // A@5
	bs := []*Instance{
		a.Insert(1, ev(2)),  // B@2, RIP nil
		a.Insert(1, ev(4)),  // B@4, RIP nil
		a.Insert(1, ev(6)),  // B@6, RIP A@5
		a.Insert(1, ev(10)), // B@10, RIP A@5
	}
	// Late A@3: becomes RIP of B@4 only; B@6, B@10 keep A@5.
	a.Insert(0, ev(3))
	wantTS := []any{nil, event.Time(3), event.Time(5), event.Time(5)}
	for i, b := range bs {
		got := ripTS(b)
		if (got == nil) != (wantTS[i] == nil) || (got != nil && got != wantTS[i]) {
			t.Errorf("B[%d] RIP = %v, want %v", i, got, wantTS[i])
		}
	}
	if err := a.CheckRIPInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPurgeBefore(t *testing.T) {
	a := New(2)
	for _, ts := range []event.Time{1, 3, 5, 7} {
		a.Insert(0, ev(ts))
	}
	for _, ts := range []event.Time{2, 6} {
		a.Insert(1, ev(ts))
	}
	n := a.PurgeBefore(func(pos int) event.Time {
		if pos == 0 {
			return 4
		}
		return 3
	})
	if n != 3 {
		t.Fatalf("purged = %d, want 3", n)
	}
	if a.Stack(0).Len() != 2 || a.Stack(0).At(0).Event.TS != 5 {
		t.Errorf("stack0 after purge: %s", a.Stack(0))
	}
	if a.Stack(1).Len() != 1 || a.Stack(1).At(0).Event.TS != 6 {
		t.Errorf("stack1 after purge: %s", a.Stack(1))
	}
	if a.Size() != 3 {
		t.Errorf("Size() = %d", a.Size())
	}
	// Purging nothing is a no-op.
	if got := a.Stack(0).PurgeBefore(0); got != 0 {
		t.Errorf("empty purge removed %d", got)
	}
}

func TestRIPInvariantProperty(t *testing.T) {
	// Random interleavings of inserts across 3 stacks must keep stacks
	// sorted and every live RIP exact (no purging here, so no stale RIPs).
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3)
		for i := 0; i < int(nOps%64)+1; i++ {
			pos := rng.Intn(3)
			ts := event.Time(rng.Intn(50))
			a.Insert(pos, ev(ts))
		}
		for i := 0; i < 3; i++ {
			if !a.Stack(i).IsSorted() {
				return false
			}
		}
		// Strengthen CheckRIPInvariant: with no purging, nil-want means
		// RIP must be nil.
		for pos := 1; pos < 3; pos++ {
			prev := a.Stack(pos - 1)
			for i := 0; i < a.Stack(pos).Len(); i++ {
				x := a.Stack(pos).At(i)
				want := prev.LatestBefore(x.Event.TS)
				if want == nil && x.RIP != nil {
					return false
				}
			}
		}
		return a.CheckRIPInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPurgePropertyKeepsSuffix(t *testing.T) {
	f := func(seed int64, horizon uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(1)
		total := 40
		for i := 0; i < total; i++ {
			a.Insert(0, ev(event.Time(rng.Intn(100))))
		}
		h := event.Time(horizon % 100)
		before := a.Stack(0).UpperBound(h)
		purged := a.Stack(0).PurgeBefore(h)
		if purged != before {
			return false
		}
		s := a.Stack(0)
		if s.Len() != total-purged || !s.IsSorted() {
			return false
		}
		return s.Len() == 0 || s.At(0).Event.TS >= h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStackString(t *testing.T) {
	a := New(1)
	a.Insert(0, ev(1))
	a.Insert(0, ev(2))
	if got := a.Stack(0).String(); got != "[1 2]" {
		t.Errorf("String() = %q", got)
	}
}
