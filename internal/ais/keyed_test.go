package ais

import (
	"testing"

	"oostream/internal/event"
)

func TestKeyedStacksRoutingAndSize(t *testing.T) {
	k := NewKeyed(2)
	if k.Positions() != 2 || k.Groups() != 0 || k.Size() != 0 {
		t.Fatalf("fresh keyed stacks: %d positions, %d groups, size %d", k.Positions(), k.Groups(), k.Size())
	}
	a := event.Int(1)
	b := event.Int(2)
	k.Insert(a, 0, event.Event{Type: "A", TS: 10, Seq: 1})
	k.Insert(a, 1, event.Event{Type: "B", TS: 20, Seq: 2})
	k.Insert(b, 0, event.Event{Type: "A", TS: 15, Seq: 3})
	if k.Groups() != 2 || k.Size() != 3 {
		t.Fatalf("groups=%d size=%d, want 2/3", k.Groups(), k.Size())
	}
	// Routing: each group only sees its own key's instances.
	if got := k.Group(a).Size(); got != 2 {
		t.Fatalf("group a size = %d, want 2", got)
	}
	if got := k.Group(b).Size(); got != 1 {
		t.Fatalf("group b size = %d, want 1", got)
	}
	if k.Group(event.Int(99)) != nil {
		t.Fatal("unknown key should have no group")
	}
	// RIP stays group-local: b's stack 0 instance must not become a's
	// stack 1 predecessor.
	inst := k.Group(a).Stack(1).At(0)
	if inst.RIP == nil || inst.RIP.Event.Seq != 1 {
		t.Fatalf("group a RIP = %+v, want seq 1", inst.RIP)
	}
}

func TestKeyedStacksPurgeDropsEmptyGroups(t *testing.T) {
	k := NewKeyed(1)
	for i := 0; i < 5; i++ {
		k.Insert(event.Int(int64(i)), 0, event.Event{Type: "A", TS: event.Time(i), Seq: event.Seq(i + 1)})
	}
	k.Insert(event.Int(0), 0, event.Event{Type: "A", TS: 100, Seq: 10})
	// Purge everything below TS 50: groups 1..4 empty out and are dropped;
	// group 0 keeps its late instance.
	purged := k.PurgeBefore(func(int) event.Time { return 50 })
	if purged != 5 {
		t.Fatalf("purged %d, want 5", purged)
	}
	if k.Groups() != 1 || k.Size() != 1 {
		t.Fatalf("after purge: %d groups, size %d, want 1/1", k.Groups(), k.Size())
	}
	total := 0
	k.Range(func(_ event.Value, st *Stacks) { total += st.Size() })
	if total != k.Size() {
		t.Fatalf("incremental size %d != recomputed %d", k.Size(), total)
	}
}
