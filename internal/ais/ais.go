// Package ais implements Active Instance Stacks, the stack-based data
// structure at the heart of SASE-style sequence scan and construction and of
// this paper's out-of-order extension.
//
// One stack per positive pattern position holds the *active instances*:
// events of the position's type that passed the position's local predicates
// and are still inside the purge horizon. Each instance records its RIP
// (rightmost viable predecessor): the latest instance in the previous stack
// with a strictly smaller timestamp. For in-order arrival the RIP is simply
// the top of the previous stack at insertion time; sequence construction
// walks RIP pointers to enumerate candidate bindings.
//
// The out-of-order extension of the paper keeps every stack sorted by
// (timestamp, arrival sequence) and supports:
//
//   - Insert at the timestamp-correct position (binary search), computing
//     the RIP of the new instance by binary search in the previous stack;
//   - RIP fix-up: instances in the *next* stack whose correct predecessor
//     becomes the new instance form a contiguous run and are repointed;
//   - purge of a timestamp-prefix of a stack once the safe clock passes it.
package ais

import (
	"fmt"
	"sort"
	"strings"

	"oostream/internal/event"
)

// Instance is an event held in a stack, with its predecessor pointer.
type Instance struct {
	// Event is the stored event.
	Event event.Event
	// RIP is the rightmost viable predecessor: the latest instance of the
	// previous stack with Event.TS strictly smaller than this instance's,
	// or nil for the first stack / no viable predecessor.
	RIP *Instance
}

// beforeInStack orders instances by (TS, Seq).
func beforeInStack(a, b *Instance) bool {
	return a.Event.Before(b.Event)
}

// Stack is one active-instance stack, sorted ascending by (TS, Seq).
type Stack struct {
	items []*Instance
}

// Len returns the number of live instances.
func (s *Stack) Len() int { return len(s.items) }

// At returns the i-th instance in timestamp order.
func (s *Stack) At(i int) *Instance { return s.items[i] }

// Top returns the latest instance, or nil when empty.
func (s *Stack) Top() *Instance {
	if len(s.items) == 0 {
		return nil
	}
	return s.items[len(s.items)-1]
}

// UpperBound returns the first index whose instance has TS >= ts, which is
// also the count of instances with TS < ts.
func (s *Stack) UpperBound(ts event.Time) int {
	return sort.Search(len(s.items), func(i int) bool {
		return s.items[i].Event.TS >= ts
	})
}

// FirstAfter returns the first index whose instance has TS > ts.
func (s *Stack) FirstAfter(ts event.Time) int {
	return sort.Search(len(s.items), func(i int) bool {
		return s.items[i].Event.TS > ts
	})
}

// LatestBefore returns the latest instance with TS strictly below ts, or nil.
func (s *Stack) LatestBefore(ts event.Time) *Instance {
	idx := s.UpperBound(ts)
	if idx == 0 {
		return nil
	}
	return s.items[idx-1]
}

// insertionPoint returns where inst belongs in (TS, Seq) order.
func (s *Stack) insertionPoint(inst *Instance) int {
	return sort.Search(len(s.items), func(i int) bool {
		return beforeInStack(inst, s.items[i])
	})
}

// insertAt splices inst into position idx.
func (s *Stack) insertAt(idx int, inst *Instance) {
	s.items = append(s.items, nil)
	copy(s.items[idx+1:], s.items[idx:])
	s.items[idx] = inst
}

// PurgeBefore removes every instance with TS < ts and returns how many were
// removed. The removed prefix is released for garbage collection.
func (s *Stack) PurgeBefore(ts event.Time) int {
	idx := s.UpperBound(ts)
	if idx == 0 {
		return 0
	}
	n := copy(s.items, s.items[idx:])
	for i := n; i < len(s.items); i++ {
		s.items[i] = nil
	}
	s.items = s.items[:n]
	return idx
}

// IsSorted verifies the (TS, Seq) order invariant (used by tests).
func (s *Stack) IsSorted() bool {
	for i := 1; i < len(s.items); i++ {
		if !beforeInStack(s.items[i-1], s.items[i]) {
			return false
		}
	}
	return true
}

// String renders the stack compactly for debugging.
func (s *Stack) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, inst := range s.items {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", inst.Event.TS)
	}
	b.WriteByte(']')
	return b.String()
}

// Stacks is the full AIS structure: one stack per positive position.
type Stacks struct {
	stacks []*Stack
	// lastFix is the number of RIP repairs the most recent Insert caused —
	// the structural work an out-of-order insertion forces. Engines read it
	// via LastFixups right after Insert to feed repair metrics.
	lastFix int
}

// New creates an AIS with n positions.
func New(n int) *Stacks {
	s := &Stacks{stacks: make([]*Stack, n)}
	for i := range s.stacks {
		s.stacks[i] = &Stack{}
	}
	return s
}

// Len returns the number of positions.
func (a *Stacks) Len() int { return len(a.stacks) }

// Stack returns the stack at position i.
func (a *Stacks) Stack(i int) *Stack { return a.stacks[i] }

// Size returns the total number of live instances across all stacks.
func (a *Stacks) Size() int {
	total := 0
	for _, s := range a.stacks {
		total += len(s.items)
	}
	return total
}

// Insert places e into the stack at position pos, keeping timestamp order,
// sets the new instance's RIP from the previous stack, and repoints the
// contiguous run of next-stack instances whose rightmost viable predecessor
// the new instance becomes. It returns the new instance.
//
// For in-order arrival (e later than everything seen) this degenerates to
// the classic SASE push: append, RIP = top of the previous stack.
func (a *Stacks) Insert(pos int, e event.Event) *Instance {
	inst := &Instance{Event: e}
	s := a.stacks[pos]
	idx := s.insertionPoint(inst)
	s.insertAt(idx, inst)

	if pos > 0 {
		inst.RIP = a.stacks[pos-1].LatestBefore(e.TS)
	}
	a.lastFix = 0
	if pos+1 < len(a.stacks) {
		a.lastFix = a.fixupNext(pos+1, inst)
	}
	return inst
}

// LastFixups returns how many next-stack instances the most recent Insert
// repointed (0 for a plain in-order push).
func (a *Stacks) LastFixups() int { return a.lastFix }

// fixupNext repoints instances in stack nextPos whose correct RIP becomes
// inst, returning how many it repointed. Those instances x satisfy
// x.TS > inst.TS and have a current RIP ordered before inst (or none).
// Because stacks are sorted and the correct RIP is monotone in x, the run
// is contiguous and ends at the first x whose RIP already is inst or later.
func (a *Stacks) fixupNext(nextPos int, inst *Instance) int {
	next := a.stacks[nextPos]
	n := 0
	for i := next.FirstAfter(inst.Event.TS); i < len(next.items); i++ {
		x := next.items[i]
		if x.RIP != nil && !beforeInStack(x.RIP, inst) {
			break
		}
		x.RIP = inst
		n++
	}
	return n
}

// PurgeBefore removes, at every position, instances with TS < horizon(pos).
// The per-position horizon function lets engines keep the final stack on a
// different schedule than intermediate stacks (see the purge rules in the
// core engine). It returns the total number purged.
//
// Purging can leave RIP pointers referencing purged instances; that is safe
// because construction never dereferences a RIP outside the window horizon,
// and it is the paper's behaviour: purge reclaims instances wholesale
// without touching survivors.
func (a *Stacks) PurgeBefore(horizon func(pos int) event.Time) int {
	total := 0
	for i, s := range a.stacks {
		total += s.PurgeBefore(horizon(i))
	}
	return total
}

// CheckRIPInvariant verifies that every instance's RIP equals the latest
// previous-stack instance with a strictly smaller timestamp. Used by tests
// and property checks; not called on hot paths. Instances whose correct RIP
// was purged are skipped (their stored RIP is stale by design).
func (a *Stacks) CheckRIPInvariant() error {
	for pos := 1; pos < len(a.stacks); pos++ {
		prev := a.stacks[pos-1]
		for _, x := range a.stacks[pos].items {
			want := prev.LatestBefore(x.Event.TS)
			if want == nil {
				// Either no viable predecessor ever existed (RIP nil) or
				// the predecessor was purged (stale pointer allowed).
				continue
			}
			if x.RIP != want {
				return fmt.Errorf("position %d instance ts=%d: RIP=%v, want ts=%d",
					pos, x.Event.TS, ripTS(x), want.Event.TS)
			}
		}
	}
	return nil
}

func ripTS(x *Instance) any {
	if x.RIP == nil {
		return nil
	}
	return x.RIP.Event.TS
}
