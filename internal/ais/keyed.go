package ais

import (
	"oostream/internal/event"
)

// KeyedStacks partitions Active Instance Stacks by an equivalence-class
// key, the SASE optimization for queries whose components are all linked
// by equality on one attribute (e.g. the canonical RFID query's item id):
// only instances sharing the trigger's key can ever bind into a match, so
// insertion, RIP fix-up, and construction walk the trigger's key group
// instead of every instance in the window.
//
// Each group is a full Stacks value with the usual sorted-stack invariants;
// the keyed layer adds the routing map, an O(1) incrementally maintained
// total size, and a purge sweep that drops groups once empty (bounding the
// map at the number of keys live inside the purge horizon).
//
// Callers canonicalize keys (event.Value.MapKey / plan.KeyOf) before
// routing, so Equal-comparing values share a group.
type KeyedStacks struct {
	n      int
	groups map[event.Value]*Stacks
	size   int
}

// NewKeyed creates a keyed AIS with n positions per key group.
func NewKeyed(n int) *KeyedStacks {
	return &KeyedStacks{n: n, groups: make(map[event.Value]*Stacks)}
}

// Positions returns the number of pattern positions per group.
func (k *KeyedStacks) Positions() int { return k.n }

// Groups returns the number of live key groups.
func (k *KeyedStacks) Groups() int { return len(k.groups) }

// Group returns the stacks for a key, or nil when the key has no live
// instances.
func (k *KeyedStacks) Group(key event.Value) *Stacks { return k.groups[key] }

// Insert routes e to its key group (creating it on first use) and inserts
// at position pos with the usual timestamp ordering and RIP fix-up,
// returning the new instance and its group for construction to walk.
func (k *KeyedStacks) Insert(key event.Value, pos int, e event.Event) (*Instance, *Stacks) {
	st, ok := k.groups[key]
	if !ok {
		st = New(k.n)
		k.groups[key] = st
	}
	k.size++
	return st.Insert(pos, e), st
}

// Size returns the total number of live instances across all groups in
// O(1): it is maintained incrementally by Insert and PurgeBefore.
func (k *KeyedStacks) Size() int { return k.size }

// PurgeBefore applies the per-position horizon to every group and drops
// groups left empty, returning the total number of instances removed.
func (k *KeyedStacks) PurgeBefore(horizon func(pos int) event.Time) int {
	total := 0
	for key, st := range k.groups {
		total += st.PurgeBefore(horizon)
		if st.Size() == 0 {
			delete(k.groups, key)
		}
	}
	k.size -= total
	return total
}

// Range calls f for every live key group, in map order.
func (k *KeyedStacks) Range(f func(key event.Value, st *Stacks)) {
	for key, st := range k.groups {
		f(key, st)
	}
}
