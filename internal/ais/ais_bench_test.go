package ais

import (
	"math/rand"
	"testing"

	"oostream/internal/event"
)

// BenchmarkAppendInOrder measures the classic in-order push path: sorted
// insertion degenerates to an append plus a constant-time RIP lookup.
func BenchmarkAppendInOrder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := New(3)
		b.StartTimer()
		for ts := event.Time(0); ts < 1000; ts++ {
			a.Insert(int(ts)%3, event.Event{TS: ts, Seq: event.Seq(ts + 1)})
		}
	}
}

// BenchmarkInsertOutOfOrder measures the paper's insertion path: binary
// search placement plus RIP fix-up of the successor run.
func BenchmarkInsertOutOfOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tss := make([]event.Time, 1000)
	for i := range tss {
		tss[i] = event.Time(rng.Intn(10_000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := New(3)
		b.StartTimer()
		for j, ts := range tss {
			a.Insert(j%3, event.Event{TS: ts, Seq: event.Seq(j + 1)})
		}
	}
}

// BenchmarkPurge measures prefix purging across stacks.
func BenchmarkPurge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := New(2)
		for ts := event.Time(0); ts < 2000; ts++ {
			a.Insert(int(ts)%2, event.Event{TS: ts, Seq: event.Seq(ts + 1)})
		}
		b.StartTimer()
		a.PurgeBefore(func(int) event.Time { return 1000 })
	}
}
