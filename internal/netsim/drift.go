package netsim

import (
	"fmt"

	"oostream/internal/event"
)

// Phase binds a link model to a span of send time: the phase governs every
// delivery whose send timestamp is below Until. Phases let an experiment
// model non-stationary networks — a quiet morning, a congested afternoon —
// which is exactly the regime an adaptive disorder bound must track.
type Phase struct {
	// Until is the exclusive upper send-time bound of this phase. The last
	// phase may use 0 to mean "until the end of the stream".
	Until event.Time
	// Link is the delivery model in force during the phase.
	Link LinkConfig
}

// DriftConfig makes the delivery model non-stationary in two independent
// ways, composing with Config.Link (which remains the fallback when no
// phase matches):
//
//   - Phases replace the link model wholesale by send time, producing slow
//     drifts (the mean delay ramps up when the stream crosses a phase
//     boundary).
//   - Bursts model transient congestion: each delivery has probability
//     BurstP of opening a congestion episode whose length (in deliveries)
//     is exponential with mean BurstMeanLen; every delivery inside an
//     episode has its jitter multiplied by BurstX. Episodes follow
//     production order, so a burst hits a contiguous span of sends — the
//     "massively late all at once" shape that defeats a static K chosen
//     from steady-state percentiles.
type DriftConfig struct {
	// Phases are consulted in order; the first phase with send < Until (or
	// Until == 0) wins. Empty means the base link applies throughout.
	Phases []Phase
	// BurstP is the per-delivery probability of opening a congestion
	// episode; 0 disables bursts.
	BurstP float64
	// BurstMeanLen is the mean episode length in deliveries (default 1).
	BurstMeanLen float64
	// BurstX multiplies jitter inside an episode; values ≤ 1 disable
	// bursts.
	BurstX float64
}

// Validate checks the drift configuration.
func (d DriftConfig) Validate() error {
	var prev event.Time
	for i, ph := range d.Phases {
		if ph.Until == 0 {
			if i != len(d.Phases)-1 {
				return fmt.Errorf("phase %d: Until=0 (open-ended) only allowed on the last phase", i)
			}
		} else if ph.Until <= prev {
			return fmt.Errorf("phase %d: Until=%d not increasing (previous %d)", i, ph.Until, prev)
		}
		if ph.Link.JitterMean < 0 || ph.Link.HeavyTailP < 0 || ph.Link.HeavyTailP > 1 {
			return fmt.Errorf("phase %d: invalid link config %+v", i, ph.Link)
		}
		prev = ph.Until
	}
	if d.BurstP < 0 || d.BurstP > 1 {
		return fmt.Errorf("BurstP must be in [0,1], got %g", d.BurstP)
	}
	if d.BurstMeanLen < 0 {
		return fmt.Errorf("BurstMeanLen must be non-negative, got %g", d.BurstMeanLen)
	}
	if d.BurstX < 0 {
		return fmt.Errorf("BurstX must be non-negative, got %g", d.BurstX)
	}
	return nil
}

// linkAt resolves the link model for a delivery sent at the given time,
// falling back to def when no phase matches.
func (d DriftConfig) linkAt(send event.Time, def LinkConfig) LinkConfig {
	for _, ph := range d.Phases {
		if ph.Until == 0 || send < ph.Until {
			return ph.Link
		}
	}
	return def
}

// burstsOn reports whether the burst machinery is active.
func (d DriftConfig) burstsOn() bool {
	return d.BurstP > 0 && d.BurstX > 1
}
