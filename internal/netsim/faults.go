package netsim

import (
	"fmt"
	"math/rand"
	"sort"

	"oostream/internal/event"
)

// FaultConfig extends the delivery model with the failure modes the
// fault-tolerant runtime must absorb: lost deliveries, duplicated
// deliveries (retransmission after a lost ack), source stalls that hold a
// span of events and release them late in a burst, and process crashes at
// random points of the arrival stream.
type FaultConfig struct {
	// DropP is the per-event probability the delivery is lost entirely.
	DropP float64
	// DupP is the per-event probability the delivery arrives twice (the
	// duplicate carries the same Seq and a later arrival time).
	DupP float64
	// DupDelayMean is the mean extra delay of a duplicate's second copy;
	// default 50 time units when DupP > 0.
	DupDelayMean float64
	// StallP is the per-event probability the event's source stalls
	// starting at that event's timestamp, holding deliveries for an
	// exponential duration of mean StallMean.
	StallP float64
	// StallMean is the mean stall duration.
	StallMean event.Time
	// Crashes is how many crash points to draw, uniformly over the
	// arrival stream (offsets into the delivered slice, sorted,
	// distinct). The simulator only reports them; the harness decides
	// what "crash" means (kill a supervisor, drop a store).
	Crashes int
}

// Validate checks the configuration.
func (f FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropP", f.DropP}, {"DupP", f.DupP}, {"StallP", f.StallP}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("%s must be in [0,1], got %g", p.name, p.v)
		}
	}
	if f.Crashes < 0 {
		return fmt.Errorf("Crashes must be non-negative, got %d", f.Crashes)
	}
	return nil
}

// FaultReport describes the faults actually injected.
type FaultReport struct {
	// Dropped is the number of deliveries lost.
	Dropped int
	// Duplicated is the number of events delivered twice.
	Duplicated int
	// Stalls is the number of source stalls injected.
	Stalls int
	// CrashOffsets are sorted, distinct offsets into the delivered stream
	// where the harness should simulate a process crash.
	CrashOffsets []int
}

// String renders the report on one line.
func (r FaultReport) String() string {
	return fmt.Sprintf("dropped=%d duplicated=%d stalls=%d crashes=%d",
		r.Dropped, r.Duplicated, r.Stalls, len(r.CrashOffsets))
}

// DeliverFaults runs the delivery simulation with fault injection layered
// on top: events may be dropped, duplicated, or held by a stalled source
// before the normal link-delay model orders arrivals. The input must be
// sorted by (TS, Seq). Returns the arrival-ordered stream (with duplicate
// Seqs where duplication fired), the per-arrival delays, the disorder
// profile, and the fault report.
func DeliverFaults(events []event.Event, cfg Config, f FaultConfig, rng *rand.Rand) ([]event.Event, []event.Time, Profile, FaultReport, error) {
	var rep FaultReport
	if err := f.Validate(); err != nil {
		return nil, nil, Profile{}, rep, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, Profile{}, rep, err
	}

	// Stage 1: per-event faults in production order. Stalls reuse the
	// outage machinery: a stall starting at ts holds every event of that
	// source in [ts, ts+duration) until the stall ends, which the
	// delivery model expresses as an extra source outage. Here sources
	// are not re-derived; a stall simply delays the affected event and
	// every later event of the same production slot — approximated by
	// shifting the event's own send time, which the link jitter then
	// reorders naturally.
	dupMean := f.DupDelayMean
	if dupMean <= 0 {
		dupMean = 50
	}
	staged := make([]event.Event, 0, len(events))
	extraDelay := make([]event.Time, 0, len(events))
	var stallUntil event.Time
	for _, e := range events {
		if f.StallP > 0 && rng.Float64() < f.StallP {
			end := e.TS + expDuration(rng, float64(f.StallMean))
			if end > stallUntil {
				stallUntil = end
			}
			rep.Stalls++
		}
		var hold event.Time
		if e.TS < stallUntil {
			hold = stallUntil - e.TS
		}
		if f.DropP > 0 && rng.Float64() < f.DropP {
			rep.Dropped++
			continue
		}
		staged = append(staged, e)
		extraDelay = append(extraDelay, hold)
		if f.DupP > 0 && rng.Float64() < f.DupP {
			staged = append(staged, e)
			extraDelay = append(extraDelay, hold+expDuration(rng, dupMean))
			rep.Duplicated++
		}
	}

	// Stage 2: the normal delivery model over the staged events, with the
	// fault delays added to each event's send time. Deliver sorts by
	// arrival, so duplicates and stalled bursts land where their delays
	// put them. The shift is a temporary TS bump that is undone after
	// ordering (the event the engine sees is unchanged).
	shifted := make([]event.Event, len(staged))
	for i, e := range staged {
		shifted[i] = e
		shifted[i].TS += extraDelay[i]
	}

	delivered, _, _, err := DeliverRand(shifted, cfg, rng)
	if err != nil {
		return nil, nil, Profile{}, rep, err
	}
	// Undo the TS shift: arrival order came from the shifted send times,
	// but the engine must see original timestamps. Deliveries of the same
	// Seq (duplicates) shifted by different amounts map back to the same
	// original event, so restoring by Seq is unambiguous.
	origTS := make(map[uint64]event.Time, len(events))
	for _, e := range events {
		origTS[e.Seq] = e.TS
	}
	out := make([]event.Event, len(delivered))
	for i, e := range delivered {
		out[i] = e
		out[i].TS = origTS[e.Seq]
	}

	// Recompute delays and the profile against the restored timestamps.
	delays := make([]event.Time, len(out))
	var maxSeen event.Time
	ooo := 0
	for i, e := range out {
		if i == 0 || e.TS >= maxSeen {
			maxSeen = e.TS
			delays[i] = 0
		} else {
			delays[i] = maxSeen - e.TS
			ooo++
		}
	}
	prof := Profile{Events: len(out)}
	if len(out) > 0 {
		prof.OOORatio = float64(ooo) / float64(len(out))
		sorted := append([]event.Time(nil), delays...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		prof.DelayP50 = sorted[len(sorted)/2]
		prof.DelayP99 = sorted[len(sorted)*99/100]
		prof.MaxDelay = sorted[len(sorted)-1]
	}

	// Stage 3: crash points over the arrival stream.
	if f.Crashes > 0 && len(out) > 0 {
		picked := make(map[int]bool, f.Crashes)
		for len(picked) < f.Crashes && len(picked) < len(out) {
			picked[rng.Intn(len(out))] = true
		}
		rep.CrashOffsets = make([]int, 0, len(picked))
		for off := range picked {
			rep.CrashOffsets = append(rep.CrashOffsets, off)
		}
		sort.Ints(rep.CrashOffsets)
	}
	return out, delays, prof, rep, nil
}
