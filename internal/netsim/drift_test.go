package netsim

import (
	"math/rand"
	"testing"

	"oostream/internal/event"
	"oostream/internal/gen"
)

// driftConfig: quiet phase until t=5000, then a congested phase with 8x
// the jitter, plus occasional congestion bursts.
func driftConfig(seed int64) Config {
	cfg := baseConfig(seed)
	cfg.Drift = &DriftConfig{
		Phases: []Phase{
			{Until: 5_000, Link: LinkConfig{BaseDelay: 5, JitterMean: 8}},
			{Until: 0, Link: LinkConfig{BaseDelay: 10, JitterMean: 64, HeavyTailP: 0.05, HeavyTailX: 10}},
		},
		BurstP:       0.002,
		BurstMeanLen: 20,
		BurstX:       6,
	}
	return cfg
}

func TestDriftValidate(t *testing.T) {
	bad := []DriftConfig{
		{Phases: []Phase{{Until: 0, Link: DefaultLink()}, {Until: 100, Link: DefaultLink()}}},
		{Phases: []Phase{{Until: 100, Link: DefaultLink()}, {Until: 100, Link: DefaultLink()}}},
		{Phases: []Phase{{Until: 100, Link: LinkConfig{JitterMean: -1}}}},
		{BurstP: 1.5},
		{BurstP: 0.1, BurstMeanLen: -1},
		{BurstP: 0.1, BurstX: -2},
	}
	for i, d := range bad {
		cfg := baseConfig(1)
		cfg.Drift = &d
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid drift config %+v accepted", i, d)
		}
	}
	good := driftConfig(1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid drift config rejected: %v", err)
	}
}

func TestDriftDeterministic(t *testing.T) {
	events := gen.Uniform(2_000, []string{"A", "B"}, 4, 10, 1)
	a, _, pa, err := Deliver(events, driftConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _, pb, _ := Deliver(events, driftConfig(7))
	for i := range a {
		if a[i].Seq != b[i].Seq {
			t.Fatal("nondeterministic delivery under drift")
		}
	}
	if pa != pb {
		t.Fatalf("nondeterministic profile: %v vs %v", pa, pb)
	}
}

// TestDriftShiftsDelayDistribution is the point of the model: the realized
// disorder in the congested phase must dominate the quiet phase, so a K
// chosen from the quiet phase under-provisions the congested one.
func TestDriftShiftsDelayDistribution(t *testing.T) {
	events := gen.Uniform(20_000, []string{"A", "B"}, 4, 1, 1)
	out, delays, prof, err := Deliver(events, driftConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Bursts == 0 {
		t.Fatal("no congestion bursts opened")
	}
	var quiet, congested []event.Time
	for i, e := range out {
		if e.TS < 5_000 {
			quiet = append(quiet, delays[i])
		} else {
			congested = append(congested, delays[i])
		}
	}
	maxOf := func(ds []event.Time) event.Time {
		var m event.Time
		for _, d := range ds {
			if d > m {
				m = d
			}
		}
		return m
	}
	meanOf := func(ds []event.Time) float64 {
		var s event.Time
		for _, d := range ds {
			s += d
		}
		return float64(s) / float64(len(ds))
	}
	if len(quiet) == 0 || len(congested) == 0 {
		t.Fatalf("phases not both populated: %d/%d", len(quiet), len(congested))
	}
	if meanOf(congested) < 2*meanOf(quiet) {
		t.Errorf("congested mean delay %.1f not ≫ quiet %.1f", meanOf(congested), meanOf(quiet))
	}
	if maxOf(congested) <= maxOf(quiet) {
		t.Errorf("congested max delay %d not above quiet %d", maxOf(congested), maxOf(quiet))
	}
}

// TestDriftPreservesMultiset: drift only changes arrival order, never the
// event set.
func TestDriftPreservesMultiset(t *testing.T) {
	events := gen.Uniform(1_000, []string{"A", "B"}, 4, 10, 1)
	out, _, _, err := Deliver(events, driftConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(events) {
		t.Fatalf("length changed: %d vs %d", len(out), len(events))
	}
	seen := map[event.Seq]bool{}
	for _, e := range out {
		if seen[e.Seq] {
			t.Fatal("duplicate delivery under drift")
		}
		seen[e.Seq] = true
	}
}

// TestDriftComposesWithFaults: the drift model must ride along under
// DeliverFaults (drops/dups/stalls) without breaking its invariants.
func TestDriftComposesWithFaults(t *testing.T) {
	events := gen.Uniform(2_000, []string{"A", "B"}, 4, 10, 1)
	cfg := driftConfig(13)
	rng := rand.New(rand.NewSource(13))
	out, delays, prof, rep, err := DeliverFaults(events, cfg, FaultConfig{DropP: 0.01, DupP: 0.01, StallP: 0.001, StallMean: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(delays) {
		t.Fatalf("lengths diverge: %d vs %d", len(out), len(delays))
	}
	want := len(events) - rep.Dropped + rep.Duplicated
	if len(out) != want {
		t.Fatalf("delivered %d, want %d (%v)", len(out), want, rep)
	}
	if prof.OOORatio <= 0 {
		t.Error("no disorder realized under drift+faults")
	}
}
