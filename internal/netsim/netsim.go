// Package netsim simulates the mechanism the paper names as the cause of
// out-of-order arrival: events produced at distributed sources travel to
// the processing engine over links with variable latency, and sources can
// fail — buffering their output and releasing it in a burst on recovery.
//
// Where gen.Shuffle injects disorder synthetically (pick X% of events,
// delay them up to K), netsim derives arrival order from a delivery model,
// yielding the delay *distributions* real deployments see: mostly-ordered
// streams with a heavy tail, plus failure bursts that are massively late
// all at once. The simulator reports the realized disorder profile so
// experiments can relate the configured K to what actually happened —
// including how many events exceed any chosen K (which the engine will
// have to drop or handle best-effort).
//
// The substitution is documented in DESIGN.md: the paper's testbed traces
// are unavailable, so this model stands in for them; it exercises exactly
// the same engine code paths (bounded disorder, bound violations, bursts).
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"oostream/internal/event"
)

// LinkConfig describes one source's link to the engine.
type LinkConfig struct {
	// BaseDelay is the minimum delivery delay (propagation).
	BaseDelay event.Time
	// JitterMean is the mean of the additional exponential jitter.
	JitterMean float64
	// HeavyTailP is the probability a delivery takes the slow path
	// (e.g. a retransmission), multiplying its jitter by HeavyTailX.
	HeavyTailP float64
	// HeavyTailX is the slow-path multiplier.
	HeavyTailX float64
}

// DefaultLink models a LAN-ish link: 5ms base, 10ms mean jitter, 2% of
// deliveries 20x slower.
func DefaultLink() LinkConfig {
	return LinkConfig{BaseDelay: 5, JitterMean: 10, HeavyTailP: 0.02, HeavyTailX: 20}
}

// FailureConfig describes source failures: a failed source buffers its
// events locally and flushes them when it recovers (the "machine failure"
// disorder mode of the paper's introduction).
type FailureConfig struct {
	// MTBF is the mean time between failures per source; 0 disables
	// failures.
	MTBF event.Time
	// OutageMean is the mean outage duration.
	OutageMean event.Time
}

// Config configures a simulation.
type Config struct {
	// Sources is the number of event producers; events are assigned to
	// sources round-robin unless PartitionAttr is set.
	Sources int
	// PartitionAttr, when non-empty, routes events to sources by hashing
	// this attribute (a sensor's readings share its link and its fate).
	PartitionAttr string
	// Link is the delivery model, shared by all sources.
	Link LinkConfig
	// Failure is the failure model; zero value disables failures.
	Failure FailureConfig
	// Drift, when non-nil, makes the link model non-stationary: phased
	// link replacement by send time plus transient congestion bursts (see
	// DriftConfig). It composes with Failure and with DeliverFaults.
	Drift *DriftConfig
	// Seed drives all randomness.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sources <= 0 {
		return fmt.Errorf("sources must be positive, got %d", c.Sources)
	}
	if c.Link.JitterMean < 0 || c.Link.HeavyTailP < 0 || c.Link.HeavyTailP > 1 {
		return fmt.Errorf("invalid link config %+v", c.Link)
	}
	if c.Drift != nil {
		if err := c.Drift.Validate(); err != nil {
			return fmt.Errorf("drift: %w", err)
		}
	}
	return nil
}

// Profile summarizes the realized disorder of a delivered stream.
type Profile struct {
	// Events is the stream length.
	Events int
	// OOORatio is the fraction arriving below the running max timestamp.
	OOORatio float64
	// MaxDelay is the largest delay against the running max timestamp
	// (the smallest K that loses nothing).
	MaxDelay event.Time
	// DelayP50, DelayP99 are delay percentiles against the running max.
	DelayP50, DelayP99 event.Time
	// Failures is the number of outages simulated.
	Failures int
	// Bursts is the number of congestion episodes opened (Drift only).
	Bursts int
}

// String renders the profile on one line.
func (p Profile) String() string {
	return fmt.Sprintf("events=%d ooo=%.1f%% delay(p50=%d p99=%d max=%d) failures=%d",
		p.Events, 100*p.OOORatio, p.DelayP50, p.DelayP99, p.MaxDelay, p.Failures)
}

// ExceedingK counts events whose realized delay exceeds k (they would be
// late under a K-slack bound of k). The delays slice comes from Deliver.
func ExceedingK(delays []event.Time, k event.Time) int {
	n := 0
	for _, d := range delays {
		if d > k {
			n++
		}
	}
	return n
}

// Deliver runs the simulation: the input must be sorted by (TS, Seq)
// (production order); the result is the arrival-ordered stream, the
// per-arrival delay against the running max timestamp (for bound
// analysis), and the realized disorder profile.
func Deliver(events []event.Event, cfg Config) ([]event.Event, []event.Time, Profile, error) {
	return DeliverRand(events, cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// DeliverRand is Deliver driven by an explicit random source instead of
// cfg.Seed, so a composite experiment can derive every random choice from
// one master seed. The rand state is advanced; cfg.Seed is ignored.
func DeliverRand(events []event.Event, cfg Config, rng *rand.Rand) ([]event.Event, []event.Time, Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, Profile{}, err
	}

	// Per-source failure schedules: alternating up/down intervals.
	outages := make([][2]event.Time, 0)
	sourceOutages := make([][][2]event.Time, cfg.Sources)
	var horizon event.Time
	if len(events) > 0 {
		horizon = events[len(events)-1].TS
	}
	if cfg.Failure.MTBF > 0 {
		for s := 0; s < cfg.Sources; s++ {
			t := event.Time(0)
			for t < horizon {
				up := expDuration(rng, float64(cfg.Failure.MTBF))
				down := expDuration(rng, float64(cfg.Failure.OutageMean))
				start := t + up
				end := start + down
				if start >= horizon {
					break
				}
				sourceOutages[s] = append(sourceOutages[s], [2]event.Time{start, end})
				outages = append(outages, [2]event.Time{start, end})
				t = end
			}
		}
	}

	type delivery struct {
		e       event.Event
		arrival event.Time
	}
	deliveries := make([]delivery, len(events))
	burstLeft, bursts := 0, 0
	for i, e := range events {
		src := i % cfg.Sources
		if cfg.PartitionAttr != "" {
			if v, ok := e.Attr(cfg.PartitionAttr); ok {
				src = int(cheapHash(v) % uint64(cfg.Sources))
			}
		}
		send := e.TS
		// A source that is down holds the event until recovery.
		for _, o := range sourceOutages[src] {
			if e.TS >= o[0] && e.TS < o[1] {
				send = o[1]
				break
			}
		}
		link := cfg.Link
		if cfg.Drift != nil {
			link = cfg.Drift.linkAt(send, cfg.Link)
		}
		delay := float64(link.BaseDelay)
		jitter := expFloat(rng, link.JitterMean)
		if rng.Float64() < link.HeavyTailP {
			jitter *= link.HeavyTailX
		}
		// Congestion bursts span contiguous deliveries in production
		// order: once an episode opens, BurstX applies until it drains.
		if cfg.Drift != nil && cfg.Drift.burstsOn() {
			if burstLeft > 0 {
				jitter *= cfg.Drift.BurstX
				burstLeft--
			} else if rng.Float64() < cfg.Drift.BurstP {
				jitter *= cfg.Drift.BurstX
				burstLeft = int(expDuration(rng, cfg.Drift.BurstMeanLen)) - 1
				bursts++
			}
		}
		delay += jitter
		deliveries[i] = delivery{e: e, arrival: send + event.Time(math.Round(delay))}
	}
	sort.SliceStable(deliveries, func(a, b int) bool {
		return deliveries[a].arrival < deliveries[b].arrival
	})

	out := make([]event.Event, len(deliveries))
	delays := make([]event.Time, len(deliveries))
	var maxSeen event.Time
	ooo := 0
	for i, d := range deliveries {
		out[i] = d.e
		if i == 0 || d.e.TS >= maxSeen {
			maxSeen = d.e.TS
			delays[i] = 0
		} else {
			delays[i] = maxSeen - d.e.TS
			ooo++
		}
	}
	prof := Profile{
		Events:   len(out),
		Failures: len(outages),
		Bursts:   bursts,
	}
	if len(out) > 0 {
		prof.OOORatio = float64(ooo) / float64(len(out))
		sorted := make([]event.Time, len(delays))
		copy(sorted, delays)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		prof.DelayP50 = sorted[len(sorted)/2]
		prof.DelayP99 = sorted[len(sorted)*99/100]
		prof.MaxDelay = sorted[len(sorted)-1]
	}
	return out, delays, prof, nil
}

// expDuration draws an exponential duration with the given mean, at least 1.
func expDuration(rng *rand.Rand, mean float64) event.Time {
	if mean <= 0 {
		return 1
	}
	d := event.Time(math.Round(rng.ExpFloat64() * mean))
	if d < 1 {
		d = 1
	}
	return d
}

func expFloat(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return rng.ExpFloat64() * mean
}

// cheapHash hashes a value for source routing (FNV-1a over its rendering;
// routing only needs stability, not speed).
func cheapHash(v event.Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range []byte(v.String()) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
