package netsim

import (
	"math/rand"
	"testing"

	"oostream/internal/event"
	"oostream/internal/gen"
)

func faultInput(n int, seed int64) []event.Event {
	return gen.Uniform(n, []string{"A", "B"}, 3, 5, seed)
}

// TestDeliverFaultsNoFaultsEqualsDeliver: with a zero FaultConfig the
// fault path reduces to the plain delivery model on the same rng stream.
func TestDeliverFaultsNoFaultsEqualsDeliver(t *testing.T) {
	events := faultInput(400, 3)
	cfg := Config{Sources: 4, Link: DefaultLink(), Seed: 7}

	want, _, _, err := DeliverRand(events, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, rep, err := DeliverFaults(events, cfg, FaultConfig{}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 || rep.Duplicated != 0 || rep.Stalls != 0 || len(rep.CrashOffsets) != 0 {
		t.Fatalf("faults injected with zero config: %v", rep)
	}
	if len(got) != len(want) {
		t.Fatalf("%d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("order diverged at %d", i)
		}
	}
}

// TestDeliverFaultsDropAndDup: drops shrink and dups grow the stream by
// the reported amounts, duplicates share Seq and original TS, and every
// surviving event keeps its production timestamp.
func TestDeliverFaultsDropAndDup(t *testing.T) {
	events := faultInput(600, 11)
	cfg := Config{Sources: 3, Link: DefaultLink()}
	f := FaultConfig{DropP: 0.05, DupP: 0.05}
	out, _, _, rep, err := DeliverFaults(events, cfg, f, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 || rep.Duplicated == 0 {
		t.Fatalf("no faults fired: %v", rep)
	}
	if len(out) != len(events)-rep.Dropped+rep.Duplicated {
		t.Fatalf("len=%d, want %d-%d+%d", len(out), len(events), rep.Dropped, rep.Duplicated)
	}
	orig := make(map[uint64]event.Time, len(events))
	for _, e := range events {
		orig[e.Seq] = e.TS
	}
	seen := make(map[uint64]int)
	for _, e := range out {
		ts, ok := orig[e.Seq]
		if !ok {
			t.Fatalf("fabricated seq %d", e.Seq)
		}
		if e.TS != ts {
			t.Fatalf("seq %d delivered with TS %d, want original %d", e.Seq, e.TS, ts)
		}
		seen[e.Seq]++
	}
	dups := 0
	for _, n := range seen {
		if n == 2 {
			dups++
		} else if n > 2 {
			t.Fatalf("an event arrived %d times", n)
		}
	}
	if dups != rep.Duplicated {
		t.Fatalf("%d doubled seqs, report says %d", dups, rep.Duplicated)
	}
}

// TestDeliverFaultsStallsIncreaseDisorder: stalled sources hold events and
// release them late, visibly raising the realized max delay.
func TestDeliverFaultsStallsIncreaseDisorder(t *testing.T) {
	events := faultInput(800, 21)
	cfg := Config{Sources: 4, Link: DefaultLink()}

	_, _, base, _, err := DeliverFaults(events, cfg, FaultConfig{}, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	_, _, stalled, rep, err := DeliverFaults(events, cfg,
		FaultConfig{StallP: 0.02, StallMean: 500}, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls == 0 {
		t.Fatal("no stalls fired")
	}
	if stalled.MaxDelay <= base.MaxDelay {
		t.Fatalf("stalls did not raise max delay: %d vs %d", stalled.MaxDelay, base.MaxDelay)
	}
}

// TestDeliverFaultsCrashOffsets: crash points are distinct, sorted, and in
// range.
func TestDeliverFaultsCrashOffsets(t *testing.T) {
	events := faultInput(300, 41)
	cfg := Config{Sources: 2, Link: DefaultLink()}
	out, _, _, rep, err := DeliverFaults(events, cfg, FaultConfig{Crashes: 5}, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CrashOffsets) != 5 {
		t.Fatalf("%d crash offsets, want 5", len(rep.CrashOffsets))
	}
	for i, off := range rep.CrashOffsets {
		if off < 0 || off >= len(out) {
			t.Fatalf("offset %d out of range", off)
		}
		if i > 0 && off <= rep.CrashOffsets[i-1] {
			t.Fatalf("offsets not sorted/distinct: %v", rep.CrashOffsets)
		}
	}
}

// TestFaultConfigValidate rejects out-of-range probabilities.
func TestFaultConfigValidate(t *testing.T) {
	for _, bad := range []FaultConfig{
		{DropP: -0.1}, {DupP: 1.5}, {StallP: 2}, {Crashes: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
	if err := (FaultConfig{DropP: 0.5, DupP: 0.5, StallP: 0.1, Crashes: 3}).Validate(); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}
