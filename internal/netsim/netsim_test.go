package netsim

import (
	"testing"
	"testing/quick"

	"oostream/internal/core"
	"oostream/internal/engine"
	"oostream/internal/event"
	"oostream/internal/gen"
	"oostream/internal/oracle"
	"oostream/internal/plan"
)

func baseConfig(seed int64) Config {
	return Config{Sources: 4, Link: DefaultLink(), Seed: seed}
}

func TestDeliverPreservesMultiset(t *testing.T) {
	events := gen.Uniform(500, []string{"A", "B"}, 4, 10, 1)
	out, delays, prof, err := Deliver(events, baseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(events) || len(delays) != len(events) {
		t.Fatalf("lengths: %d %d", len(out), len(delays))
	}
	seen := map[event.Seq]bool{}
	for _, e := range out {
		if seen[e.Seq] {
			t.Fatal("duplicate delivery")
		}
		seen[e.Seq] = true
	}
	if prof.Events != len(events) {
		t.Errorf("profile events = %d", prof.Events)
	}
}

func TestDeliverDeterministic(t *testing.T) {
	events := gen.Uniform(300, []string{"A"}, 4, 10, 1)
	a, _, _, err := Deliver(events, baseConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, _ := Deliver(events, baseConfig(3))
	for i := range a {
		if a[i].Seq != b[i].Seq {
			t.Fatal("nondeterministic delivery")
		}
	}
}

func TestDeliverProducesRealisticDisorder(t *testing.T) {
	events := gen.Uniform(5_000, []string{"A", "B"}, 4, 5, 1)
	_, delays, prof, err := Deliver(events, baseConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if prof.OOORatio <= 0 {
		t.Fatal("link jitter should cause disorder")
	}
	if prof.DelayP99 <= prof.DelayP50 {
		t.Errorf("heavy tail missing: p50=%d p99=%d", prof.DelayP50, prof.DelayP99)
	}
	if prof.MaxDelay < prof.DelayP99 {
		t.Error("max below p99")
	}
	// ExceedingK is monotone in K and consistent with MaxDelay.
	if ExceedingK(delays, prof.MaxDelay) != 0 {
		t.Error("nothing may exceed the realized max delay")
	}
	if ExceedingK(delays, prof.DelayP50) < ExceedingK(delays, prof.DelayP99) {
		t.Error("ExceedingK must be antitone in K")
	}
}

func TestFailureBurstsIncreaseTail(t *testing.T) {
	events := gen.Uniform(5_000, []string{"A", "B"}, 4, 5, 1)
	_, _, calm, err := Deliver(events, baseConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(5)
	cfg.Failure = FailureConfig{MTBF: 3_000, OutageMean: 800}
	_, _, stormy, err := Deliver(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stormy.Failures == 0 {
		t.Fatal("no failures simulated")
	}
	if stormy.MaxDelay <= calm.MaxDelay {
		t.Errorf("outages should lengthen the tail: %d vs %d", stormy.MaxDelay, calm.MaxDelay)
	}
}

func TestPartitionAttrKeepsPerKeyOrder(t *testing.T) {
	// With per-key routing and no failures, one key's events share a link;
	// they can still reorder via jitter, but routing must be stable.
	events := gen.Uniform(200, []string{"A"}, 3, 10, 7)
	cfg := baseConfig(8)
	cfg.PartitionAttr = "id"
	out, _, _, err := Deliver(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(events) {
		t.Fatal("loss")
	}
}

func TestValidate(t *testing.T) {
	if _, _, _, err := Deliver(nil, Config{Sources: 0}); err == nil {
		t.Error("zero sources accepted")
	}
	bad := Config{Sources: 1, Link: LinkConfig{HeavyTailP: 2}}
	if _, _, _, err := Deliver(nil, bad); err == nil {
		t.Error("bad tail probability accepted")
	}
	if _, _, prof, err := Deliver(nil, baseConfig(1)); err != nil || prof.Events != 0 {
		t.Error("empty stream should be fine")
	}
}

// TestEngineExactUnderSimulatedNetwork is the end-to-end substitution
// check: the native engine with K = realized max delay reproduces the
// oracle on a network-delivered stream, including failure bursts.
func TestEngineExactUnderSimulatedNetwork(t *testing.T) {
	p, err := plan.ParseAndCompile(
		"PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 60", nil)
	if err != nil {
		t.Fatal(err)
	}
	events := gen.Uniform(1_000, []string{"A", "B"}, 4, 5, 9)
	cfg := baseConfig(10)
	cfg.Failure = FailureConfig{MTBF: 2_000, OutageMean: 400}
	delivered, _, prof, err := Deliver(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Matches(p, events)
	got := engine.Drain(core.MustNew(p, core.Options{K: prof.MaxDelay}), delivered)
	if ok, diff := plan.SameResults(want, got); !ok {
		t.Fatalf("native under simulated network (profile %v):\n%s", prof, diff)
	}
}

func TestUnderProvisionedKDropsExactlyTheTail(t *testing.T) {
	events := gen.Uniform(2_000, []string{"A", "B"}, 4, 5, 11)
	delivered, delays, prof, err := Deliver(events, baseConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	k := prof.DelayP50 + 1
	p, err := plan.ParseAndCompile("PATTERN SEQ(A a, B b) WITHIN 60", nil)
	if err != nil {
		t.Fatal(err)
	}
	en := core.MustNew(p, core.Options{K: k})
	engine.Drain(en, delivered)
	wantLate := uint64(ExceedingK(delays, k))
	if got := en.Metrics().EventsLate; got != wantLate {
		t.Errorf("late count = %d, want %d", got, wantLate)
	}
}

func TestDeliverProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		events := gen.Uniform(int(n)+10, []string{"A", "B"}, 3, 6, seed)
		out, delays, prof, err := Deliver(events, baseConfig(seed+1))
		if err != nil || len(out) != len(events) {
			return false
		}
		// Profile consistency: MaxDelay matches the delays slice.
		var maxD event.Time
		for _, d := range delays {
			if d > maxD {
				maxD = d
			}
		}
		return prof.MaxDelay == maxD && gen.MaxDelay(out) == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
