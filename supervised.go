package oostream

import (
	"fmt"
	"io"

	"oostream/internal/engine"
	"oostream/internal/obsv"
	"oostream/internal/recovery"
	"oostream/internal/runtime"
	"oostream/internal/shard"
)

// AdmitPolicy decides what the supervised runtime does with events its
// admission-control layer rejects: duplicates (an already-seen Seq) and
// disorder-bound violators (timestamp below the admission clock minus K).
type AdmitPolicy = runtime.AdmitPolicy

// Admission policies, re-exported.
const (
	// AdmitDrop silently drops rejected events, counting them.
	AdmitDrop = runtime.AdmitDrop
	// AdmitDeadLetter routes rejected events to the DeadLetter channel
	// (best-effort, never blocking the hot path) and counts them.
	AdmitDeadLetter = runtime.AdmitDeadLetter
	// AdmitBestEffort forwards bound violators to the engine anyway;
	// duplicates are still suppressed.
	AdmitBestEffort = runtime.AdmitBestEffort
)

// SupervisorConfig configures the fault-tolerance runtime wrapped around
// an engine: where durable state lives, how often to checkpoint, and what
// to do with rejected events.
type SupervisorConfig struct {
	// Dir is the durable state directory (checkpoints + write-ahead log).
	// Required. Reopening the same directory resumes the stream.
	Dir string
	// CheckpointEvery takes a durable engine snapshot every this many
	// offered events. 0 disables periodic checkpoints (WAL-only recovery:
	// the full log replays on restart). Snapshots require a
	// checkpoint-capable engine (native strategy, or partitioned-native);
	// other strategies run WAL-only regardless.
	CheckpointEvery int
	// Retain keeps the newest N checkpoints (older ones and their log
	// prefixes are pruned). 0 = default 3.
	Retain int
	// Policy is the admission policy; default AdmitDrop.
	Policy AdmitPolicy
	// DeadLetter receives rejected events under AdmitDeadLetter. Sends
	// never block: if the channel is full the event is counted but lost.
	DeadLetter chan<- Event
	// MaxRestarts bounds consecutive panic restarts before the supervisor
	// fails sticky. 0 = default 3.
	MaxRestarts int
	// SyncEveryEvent fsyncs the log after every append (maximum
	// durability, large throughput cost). Default: sync at checkpoints
	// and segment rotations only.
	SyncEveryEvent bool
	// DisableFsync skips fsync entirely (tests and benchmarks).
	DisableFsync bool
}

func (sc SupervisorConfig) validate() error {
	if sc.Dir == "" {
		return fmt.Errorf("SupervisorConfig.Dir is required")
	}
	if sc.CheckpointEvery < 0 {
		return fmt.Errorf("CheckpointEvery must be >= 0, got %d", sc.CheckpointEvery)
	}
	if sc.Retain < 0 {
		return fmt.Errorf("Retain must be >= 0, got %d", sc.Retain)
	}
	return nil
}

func (sc SupervisorConfig) storeOptions() recovery.Options {
	return recovery.Options{
		Retain:       sc.Retain,
		Sync:         sc.SyncEveryEvent,
		DisableFsync: sc.DisableFsync,
	}
}

// SupervisedEngine is an Engine wrapped in the fault-tolerant runtime:
// every offered event is logged durably before processing, matches carry
// monotone sequence numbers committed on emission, engine panics restart
// from the latest checkpoint with capped exponential backoff, and an
// admission-control layer filters duplicates and bound violators.
//
// A process crash at any point loses nothing: reopening the same
// directory (NewSupervisedEngine + Start) restores the newest valid
// checkpoint, replays the logged suffix, suppresses matches already
// delivered before the crash, and returns the ones the crash interrupted.
//
// Unlike Engine, events must carry caller-assigned unique Seq values —
// duplicate detection and crash-consistent identity are keyed on Seq, so
// the facade cannot auto-assign them across a restart.
type SupervisedEngine struct {
	sup   *runtime.Supervisor
	store *recovery.Store
	// lat is the wall-clock span sampler (nil unless Config.Latency is
	// set); the supervisor opens spans at offer, stamps WAL and commit
	// segments, and re-forwards the sampler across crash restarts.
	lat *obsv.LatencySampler
}

// NewSupervisedEngine builds a supervised engine over the strategy,
// disorder bound, and (when Config.Partition is set) partitioned topology
// in cfg, persisting to sc.Dir. Call Start before processing. The native
// strategy (without OrderedOutput) recovers from snapshots, partitioned or
// not; every other configuration runs WAL-only.
//
// Observability: with Config.Observer set, the supervisor publishes one
// series named "supervised(<strategy>)" carrying the fault-tolerance
// counters. For a single engine, the inner engine shares that series (the
// instrument sets are disjoint, so one series carries the full picture);
// for a partitioned engine, each shard additionally publishes its own
// "<strategy>/shardN" series. Bindings survive crash restarts.
func NewSupervisedEngine(q *Query, cfg Config, sc SupervisorConfig) (*SupervisedEngine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := validateQueryConfig(q, cfg); err != nil {
		return nil, err
	}
	engineCfg := cfg
	// The supervisor owns the span sampler (built in newSupervised from the
	// original cfg) and forwards it to whatever engine it builds or
	// restores; the inner facade must not construct a competing one.
	engineCfg.Latency = Latency{}
	if cfg.Partition.Attr == "" {
		// The supervisor forwards its own series binding to the inner
		// engine (shared series); binding the engine a second time through
		// NewEngine would clobber that with a differently-named series.
		engineCfg.Observer = nil
		engineCfg.Trace = nil
	}
	if cfg.Partition.Attr != "" && !q.plan.PartitionableBy(cfg.Partition.Attr) {
		return nil, fmt.Errorf("query is not partitionable by %q: every component must be linked by equality on it", cfg.Partition.Attr)
	}
	newFn := func() (engine.Engine, error) {
		en, err := NewEngine(q, engineCfg)
		if err != nil {
			return nil, err
		}
		return en.inner, nil
	}
	var restoreFn func(io.Reader) (engine.Engine, error)
	if cfg.Strategy == StrategyNative && !cfg.OrderedOutput {
		if cfg.Partition.Attr == "" {
			restoreFn = func(r io.Reader) (engine.Engine, error) {
				return restoreSingle(q.plan, r)
			}
		} else {
			restoreFn = func(r io.Reader) (engine.Engine, error) {
				router, err := shard.NewRouter(cfg.Partition.Attr, cfg.Partition.Shards)
				if err != nil {
					return nil, err
				}
				return shard.Restore(router, func(_ int, pr io.Reader) (engine.Engine, error) {
					return restoreSingle(q.plan, pr)
				}, r)
			}
		}
		if cfg.Provenance && restoreFn != nil {
			// Checkpoints carry no lineage, so a crash restart must re-enable
			// provenance on the restored engine; partial state that predates
			// the restore seals with records marked Truncated.
			inner := restoreFn
			restoreFn = func(r io.Reader) (engine.Engine, error) {
				en, err := inner(r)
				if err != nil {
					return nil, err
				}
				if pr, ok := en.(engine.Provenancer); ok {
					pr.EnableProvenance()
				}
				return en, nil
			}
		}
	}
	return newSupervised(cfg, sc, newFn, restoreFn)
}

func newSupervised(cfg Config, sc SupervisorConfig, newFn func() (engine.Engine, error), restoreFn func(io.Reader) (engine.Engine, error)) (*SupervisedEngine, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	store, err := recovery.Open(sc.Dir, sc.storeOptions())
	if err != nil {
		return nil, err
	}
	sup, err := runtime.NewSupervisor(store, runtime.SupervisorOptions{
		New:             newFn,
		Restore:         restoreFn,
		K:               cfg.K,
		Policy:          sc.Policy,
		DeadLetter:      sc.DeadLetter,
		CheckpointEvery: sc.CheckpointEvery,
		MaxRestarts:     sc.MaxRestarts,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	if cfg.Observer != nil || cfg.Trace != nil {
		var s *obsv.Series
		if cfg.Observer != nil {
			s = cfg.Observer.Series("supervised(" + string(cfg.Strategy) + ")")
		}
		sup.Observe(s, cfg.Trace)
	}
	lat := newLatencySampler(cfg)
	if lat != nil {
		sup.SetLatencySampler(lat)
	}
	return &SupervisedEngine{sup: sup, store: store, lat: lat}, nil
}

// Start recovers durable state and readies the engine. On a fresh
// directory it returns no matches; after a crash it returns the matches
// the crash interrupted (completed by replay but not yet delivered).
func (s *SupervisedEngine) Start() ([]Match, error) { return s.sup.Start() }

// Process offers one event. The event must carry a unique non-zero Seq.
// Returned matches are committed as delivered before the call returns.
func (s *SupervisedEngine) Process(ev Event) ([]Match, error) {
	if ev.Seq == 0 {
		return nil, fmt.Errorf("supervised engine requires caller-assigned event Seq values")
	}
	return s.sup.ProcessE(ev)
}

// ProcessBatch offers a slice of events through the supervised batch
// entry. Durability semantics are identical to per-event Process calls:
// each event is logged before processing and its matches are committed
// before the next event is offered, so a crash mid-batch recovers exactly
// as a crash mid-stream would — replayed, deduplicated, and never
// double-emitting past the commit horizon. Every event must carry a
// unique non-zero Seq. Processing stops at the first error; matches
// already committed are returned alongside it.
func (s *SupervisedEngine) ProcessBatch(events []Event) ([]Match, error) {
	for _, ev := range events {
		if ev.Seq == 0 {
			return nil, fmt.Errorf("supervised engine requires caller-assigned event Seq values")
		}
	}
	return s.sup.ProcessBatchE(events)
}

// ProcessAll offers a finite slice and returns all matches including the
// end-of-stream flush.
func (s *SupervisedEngine) ProcessAll(events []Event) ([]Match, error) {
	var out []Match
	for _, ev := range events {
		ms, err := s.Process(ev)
		if err != nil {
			return out, err
		}
		out = append(out, ms...)
	}
	ms, err := s.Flush()
	if err != nil {
		return out, err
	}
	return append(out, ms...), nil
}

// Flush seals the stream. End-of-stream is logged before the engine
// flushes, so a crash mid-flush replays to the same final matches.
func (s *SupervisedEngine) Flush() ([]Match, error) { return s.sup.FlushE() }

// Strategy returns the supervised engine's name, e.g. "supervised(native)".
func (s *SupervisedEngine) Strategy() string { return s.sup.Name() }

// Metrics returns the inner engine's counters with the fault-tolerance
// counters (drops, dead letters, duplicate suppressions, restarts,
// checkpoint size/duration) merged in.
func (s *SupervisedEngine) Metrics() Metrics { return s.sup.Metrics() }

// MatchSeq returns the cumulative match-emission count — the monotone
// sequence number exactly-once delivery is built on.
func (s *SupervisedEngine) MatchSeq() uint64 { return s.sup.MatchSeq() }

// StateSnapshot returns the inner engine's live-state view (see
// Engine.StateSnapshot) annotated with the supervisor's match-sequence and
// commit horizons. Like every StateSnapshot it is not synchronized with
// Process; call it between events or while the engine is idle. Returns
// nil when the composition exposes no introspection.
func (s *SupervisedEngine) StateSnapshot() *StateSnapshot {
	snap := s.sup.StateSnapshot()
	if snap != nil && s.lat != nil {
		snap.Latency = s.lat.Report()
	}
	return snap
}

// LatencyReport returns the sampled wall-clock latency attribution digest
// (stage decomposition, end-to-end wall histogram, SLO windows), or nil
// when Config.Latency is disabled.
func (s *SupervisedEngine) LatencyReport() *LatencyReport { return s.lat.Report() }

// Err returns the sticky failure, if any (set by a crash, an exhausted
// restart budget, or a store error).
func (s *SupervisedEngine) Err() error { return s.sup.Err() }

// Kill simulates a process crash for testing: durable handles are dropped
// without syncing and the engine fails sticky. Reopen the directory with
// a fresh SupervisedEngine to recover.
func (s *SupervisedEngine) Kill() { s.sup.Kill() }

// Close cleanly seals the durable store. The directory remains resumable.
func (s *SupervisedEngine) Close() error { return s.sup.Close() }
