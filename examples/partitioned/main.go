// Partitioned scale-out: when every component of a query is linked by
// equality on one attribute, the stream can be hash-partitioned on it and
// each partition matched by an independent engine — each with its own
// stacks, safe clock, and purge horizon. The example verifies the compiler
// proves the query partitionable, runs 1/2/4/8-way partitioned engines over
// the same disordered stream, and checks they all produce the single
// engine's exact result set.
package main

import (
	"fmt"
	"log"

	"oostream"
	"oostream/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	query, err := oostream.Compile(`
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id
		WITHIN 6s`, gen.RFIDSchema())
	if err != nil {
		return err
	}
	fmt.Print(query.Explain())
	if !query.PartitionableBy("id") {
		return fmt.Errorf("query unexpectedly not partitionable by id")
	}

	const k = 2_000
	sorted := gen.RFID(gen.DefaultRFID(2_000, 99))
	stream := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: k, Seed: 100})
	fmt.Printf("\nstream: %d events, %.1f%% out of order\n\n", len(stream), 100*gen.OOORatio(stream))

	single := oostream.MustNewEngine(query, oostream.Config{K: k})
	truth := single.ProcessAll(stream)
	fmt.Printf("single engine : %5d alerts, peak state %d\n",
		len(truth), single.Metrics().PeakState)

	for _, shards := range []int{1, 2, 4, 8} {
		part, err := oostream.NewEngine(query, oostream.Config{K: k,
			Partition: oostream.Partition{Attr: "id", Shards: shards}})
		if err != nil {
			return err
		}
		got := part.ProcessAll(stream)
		exact, _ := oostream.SameResults(truth, got)
		m := part.Metrics()
		fmt.Printf("%d-way shards : %5d alerts, exact=%v, per-shard peak ≈ %d\n",
			shards, len(got), exact, m.PeakState/shards)
	}

	// A non-partitionable query is rejected at construction.
	loose, err := oostream.Compile("PATTERN SEQ(SHELF s, EXIT e) WITHIN 6s", gen.RFIDSchema())
	if err != nil {
		return err
	}
	if _, err := oostream.NewEngine(loose, oostream.Config{K: k,
		Partition: oostream.Partition{Attr: "id", Shards: 4}}); err != nil {
		fmt.Printf("\nunlinked query correctly rejected: %v\n", err)
	}
	return nil
}
