// Real-time intrusion detection — the paper's second motivating
// application. Sensor events from distributed collectors arrive with
// different network delays, so the attack chain SCAN → LOGIN → EXFIL from
// one source address is routinely observed out of order. The example runs
// the detection pattern through a channel pipeline (the deployment shape: a
// goroutine per stage) and shows detections streaming out as soon as the
// chain completes — including chains completed by a late-arriving SCAN.
package main

import (
	"context"
	"fmt"
	"log"

	"oostream"
	"oostream/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	query, err := oostream.Compile(`
		PATTERN SEQ(SCAN a, LOGIN l, EXFIL x)
		WHERE a.src = l.src AND l.src = x.src AND x.bytes > 4096
		WITHIN 5s
		RETURN a.src AS attacker, x.bytes AS exfiltrated`, nil)
	if err != nil {
		return err
	}

	const k = 1_500
	sorted := gen.Intrusion(gen.DefaultIntrusion(300, 11))
	stream := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.25, MaxDelay: k, Seed: 3})
	fmt.Printf("stream: %d events, %.1f%% out of order\n", len(stream), 100*gen.OOORatio(stream))

	engine, err := oostream.NewEngine(query, oostream.Config{Strategy: oostream.StrategyNative, K: k})
	if err != nil {
		return err
	}

	in := make(chan oostream.Event)
	out := make(chan oostream.Match, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- engine.Run(context.Background(), in, out) }()
	go func() {
		defer close(in)
		for _, e := range stream {
			in <- e
		}
	}()

	detections := 0
	lateCompletions := 0
	for m := range out {
		detections++
		// A detection completed by a late event has an emission clock past
		// its last element's timestamp.
		if m.EmitClock > m.Last().TS {
			lateCompletions++
		}
		if detections <= 5 {
			attacker, _ := m.Fields[0].AsInt()
			bytes, _ := m.Fields[1].AsInt()
			fmt.Printf("  ALERT host %d exfiltrated %d bytes (chain %d..%d)\n",
				attacker, bytes, m.First().TS, m.Last().TS)
		}
	}
	if err := <-errCh; err != nil {
		return err
	}
	fmt.Printf("detections=%d (of which %d completed by a late event)\n", detections, lateCompletions)
	fmt.Printf("metrics: %v\n", engine.Metrics())
	return nil
}
