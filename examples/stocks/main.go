// Stock rebound detection with speculative output. Consolidated market
// feeds interleave exchanges with different latencies, so ticks arrive out
// of order. The query spots V-shaped rebounds per symbol:
//
//	SEQ(TRADE a, TRADE b, TRADE c) same symbol, b below a, c above b.
//
// Trading logic wants signals *now*, not after a K-slack delay — the
// speculative engine emits immediately and retracts the (rare) signals a
// late tick invalidates; the example compares it against the conservative
// levee on signal latency and shows the retraction stream a consumer must
// handle.
package main

import (
	"fmt"
	"log"

	"oostream"
	"oostream/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	query, err := oostream.Compile(`
		PATTERN SEQ(TRADE a, TRADE b, TRADE c)
		WHERE a.sym = b.sym AND b.sym = c.sym
		  AND b.price < a.price AND c.price > b.price
		WITHIN 200
		RETURN a.sym AS sym, b.price AS dip`, nil)
	if err != nil {
		return err
	}

	const k = 300
	sorted := gen.Stock(gen.DefaultStock(3_000, 5))
	stream := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: k, Seed: 6})
	fmt.Printf("ticks: %d, %.1f%% out of order\n\n", len(stream), 100*gen.OOORatio(stream))

	for _, strat := range []oostream.Strategy{oostream.StrategyKSlack, oostream.StrategyNative, oostream.StrategySpeculate} {
		en, err := oostream.NewEngine(query, oostream.Config{Strategy: strat, K: k})
		if err != nil {
			return err
		}
		signals := en.ProcessAll(stream)
		inserts, retracts := 0, 0
		for _, m := range signals {
			if m.Kind == oostream.Retract {
				retracts++
			} else {
				inserts++
			}
		}
		m := en.Metrics()
		fmt.Printf("%-10s signals=%-6d retractions=%-4d latency mean=%.1fms p99=%dms\n",
			strat, inserts, retracts, m.LogicalLat.Mean(), m.LogicalLat.Quantile(0.99))
	}

	// All three converge to the same signal set.
	base := oostream.MustNewEngine(query, oostream.Config{Strategy: oostream.StrategyKSlack, K: k}).ProcessAll(stream)
	spec := oostream.MustNewEngine(query, oostream.Config{Strategy: oostream.StrategySpeculate, K: k}).ProcessAll(stream)
	if ok, _ := oostream.SameResults(base, spec); ok {
		fmt.Println("\nspeculative stream converged to the conservative result set ✓")
	} else {
		fmt.Println("\nWARNING: speculative stream did not converge")
	}
	return nil
}
