// RFID shoplifting detection — the paper's motivating application. A
// synthetic shop-floor trace (SHELF pickup, optional COUNTER payment, EXIT
// gate) is disordered by network delays; the query flags items that left
// without payment:
//
//	PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
//	WHERE   s.id = e.id AND s.id = c.id
//	WITHIN  6s
//
// The example contrasts all four strategies on the same disordered stream:
// the naive in-order engine accuses innocent customers (premature negation
// output) and misses real thieves; the exact strategies agree with ground
// truth.
package main

import (
	"fmt"
	"log"

	"oostream"
	"oostream/internal/gen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	query, err := oostream.Compile(`
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id
		WITHIN 6s
		RETURN s.id AS item, e.gate AS gate`, gen.RFIDSchema())
	if err != nil {
		return err
	}

	const k = 2_000 // readers deliver at most 2s late
	sorted := gen.RFID(gen.DefaultRFID(500, 42))
	stream := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.15, MaxDelay: k, Seed: 7})
	fmt.Printf("stream: %d events, %.1f%% out of order, max delay %dms\n\n",
		len(stream), 100*gen.OOORatio(stream), gen.MaxDelay(stream))

	// Ground truth: the in-order engine over the properly sorted stream.
	truthEngine, err := oostream.NewEngine(query, oostream.Config{Strategy: oostream.StrategyInOrder})
	if err != nil {
		return err
	}
	truth := truthEngine.ProcessAll(sorted)
	fmt.Printf("ground truth: %d unpaid items left the shop\n\n", len(truth))

	for _, strat := range oostream.Strategies() {
		en, err := oostream.NewEngine(query, oostream.Config{Strategy: strat, K: k})
		if err != nil {
			return err
		}
		got := en.ProcessAll(stream)
		exact, _ := oostream.SameResults(truth, got)
		m := en.Metrics()
		fmt.Printf("%-10s alerts=%-4d retractions=%-3d exact=%-5v mean-latency=%.0fms\n",
			strat, m.Matches, m.Retractions, exact, m.LogicalLat.Mean())
	}

	fmt.Println("\nfirst three alerts from the native engine:")
	en, err := oostream.NewEngine(query, oostream.Config{K: k})
	if err != nil {
		return err
	}
	alerts := en.ProcessAll(stream)
	for i, m := range alerts {
		if i == 3 {
			break
		}
		item, _ := m.Fields[0].AsInt()
		gate, _ := m.Fields[1].AsString()
		fmt.Printf("  item %d left unpaid via gate %s (shelf@%d, exit@%d)\n",
			item, gate, m.First().TS, m.Last().TS)
	}
	return nil
}
