// Quickstart: compile a pattern query, feed a small out-of-order stream by
// hand, and watch the native engine emit the match the moment the late
// event arrives — no reorder buffer, no added latency for in-order data.
package main

import (
	"fmt"
	"log"

	"oostream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A temperature spike pattern: a LOW reading followed by a HIGH
	// reading of the same sensor within 10 seconds.
	query, err := oostream.Compile(`
		PATTERN SEQ(LOW l, HIGH h)
		WHERE   l.sensor = h.sensor
		WITHIN  10s
		RETURN  l.sensor AS sensor, h.temp AS peak`, nil)
	if err != nil {
		return err
	}

	// The native strategy handles disorder up to K = 5s natively.
	engine, err := oostream.NewEngine(query, oostream.Config{
		Strategy: oostream.StrategyNative,
		K:        5_000,
	})
	if err != nil {
		return err
	}

	stream := []oostream.Event{
		// The HIGH reading arrives BEFORE the LOW one that precedes it in
		// event time — network delay on the LOW reading's path.
		oostream.NewEvent("HIGH", 4_000, oostream.Attrs{
			"sensor": oostream.Int(7), "temp": oostream.Float(98.5),
		}),
		oostream.NewEvent("LOW", 1_000, oostream.Attrs{
			"sensor": oostream.Int(7), "temp": oostream.Float(41.0),
		}),
		oostream.NewEvent("LOW", 6_000, oostream.Attrs{
			"sensor": oostream.Int(3), "temp": oostream.Float(40.0),
		}),
	}

	for i, e := range stream {
		matches := engine.Process(e)
		fmt.Printf("event %d: %v\n", i+1, e)
		for _, m := range matches {
			fmt.Printf("  MATCH %v fields=%v\n", m, m.Fields)
		}
	}
	for _, m := range engine.Flush() {
		fmt.Printf("flush: MATCH %v\n", m)
	}
	fmt.Printf("metrics: %v\n", engine.Metrics())
	return nil
}
