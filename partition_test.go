package oostream

import (
	"strings"
	"testing"

	"oostream/internal/gen"
)

func TestPartitionedEngineEquivalence(t *testing.T) {
	q := MustCompile(`
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id
		WITHIN 6s`, gen.RFIDSchema())
	sorted := gen.RFID(gen.DefaultRFID(300, 71))
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: 2000, Seed: 72})

	single := MustNewEngine(q, Config{K: 2000}).ProcessAll(shuffled)

	for _, strat := range []Strategy{StrategyNative, StrategySpeculate, StrategyKSlack} {
		part, err := NewEngine(q, Config{Strategy: strat, K: 2000,
			Partition: Partition{Attr: "id", Shards: 4}})
		if err != nil {
			t.Fatal(err)
		}
		got := part.ProcessAll(shuffled)
		if ok, diff := SameResults(single, got); !ok {
			t.Errorf("partitioned %s differs:\n%s", strat, diff)
		}
		if !strings.HasPrefix(part.Strategy(), "shard(") {
			t.Errorf("Strategy() = %q", part.Strategy())
		}
	}
}

func TestPartitionedEngineRejectsUnpartitionable(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b) WITHIN 10", nil)
	if _, err := NewEngine(q, Config{K: 5, Partition: Partition{Attr: "id", Shards: 2}}); err == nil ||
		!strings.Contains(err.Error(), "not partitionable") {
		t.Fatalf("err = %v", err)
	}
	q2 := MustCompile("PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 10", nil)
	if _, err := NewEngine(q2, Config{K: 5, Partition: Partition{Attr: "id", Shards: -1}}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := NewEngine(q2, Config{K: -1, Partition: Partition{Attr: "id", Shards: 2}}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestPartitionedEngineMetrics(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 100", nil)
	en, err := NewEngine(q, Config{K: 50, Partition: Partition{Attr: "id", Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		en.Process(Event{Type: "A", TS: Time(i * 2), Seq: Seq(2*i + 1),
			Attrs: Attrs{"id": Int(int64(i % 5))}})
		en.Process(Event{Type: "B", TS: Time(i*2 + 1), Seq: Seq(2*i + 2),
			Attrs: Attrs{"id": Int(int64(i % 5))}})
	}
	en.Flush()
	m := en.Metrics()
	if m.EventsIn != 100 || m.Matches == 0 {
		t.Errorf("aggregated metrics: %+v", m)
	}
}

func TestFacadeCheckpointRestore(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b) WITHIN 100", nil)
	en := MustNewEngine(q, Config{K: 50})
	en.Process(Event{Type: "A", TS: 10, Seq: 1})
	var buf strings.Builder
	if err := en.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(q, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	out := restored.Process(Event{Type: "B", TS: 20, Seq: 2})
	if len(out) != 1 || out[0].Key() != "1|2" {
		t.Fatalf("restored engine: %v", out)
	}
	// Non-native strategies refuse.
	ks := MustNewEngine(q, Config{Strategy: StrategyKSlack, K: 50})
	if err := ks.Checkpoint(&strings.Builder{}); err == nil {
		t.Fatal("kslack checkpoint should fail")
	}
}
