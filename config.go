package oostream

import (
	"fmt"
	"time"

	"oostream/internal/adaptive"
	"oostream/internal/core"
)

// Strategy selects the out-of-order handling approach.
type Strategy string

// Available strategies.
const (
	// StrategyNative is the paper's native out-of-order engine (default).
	StrategyNative Strategy = "native"
	// StrategyInOrder is the classic SASE engine (exact only on sorted
	// input; the paper's problem-analysis baseline).
	StrategyInOrder Strategy = "inorder"
	// StrategyKSlack reorders with a K-slack buffer before an in-order
	// engine (the levee baseline).
	StrategyKSlack Strategy = "kslack"
	// StrategySpeculate emits eagerly and compensates with retractions
	// (the aggressive extension).
	StrategySpeculate Strategy = "speculate"
	// StrategyHybrid runs speculate OR native inside a switching
	// meta-engine: it speculates while disorder is low and falls back to
	// native sealing when the retraction rate or the adaptive disorder
	// bound breaches Config.Adaptive.SLO, handing off at sealed watermarks
	// so the net output stays exact across switches. The meta-engine always
	// runs an adaptive controller (set Config.Adaptive.Enabled for dynamic
	// K; otherwise K stays pinned at Config.K).
	StrategyHybrid Strategy = "hybrid"
)

// Strategies lists every available strategy, in evaluation-table order.
func Strategies() []Strategy {
	return []Strategy{StrategyInOrder, StrategyKSlack, StrategyNative, StrategySpeculate, StrategyHybrid}
}

// Adaptive disorder-control configuration, re-exported from the internal
// controller package. Adaptive.Enabled derives K online from a lag
// quantile; Adaptive.SLO drives the hybrid strategy's switching;
// Adaptive.Limits bounds state and lag via degradation (shedding). The
// zero value disables all three.
type (
	// Adaptive configures the dynamic-K controller (see Config.Adaptive).
	Adaptive = adaptive.Config
	// SLO holds the hybrid strategy's switching targets.
	SLO = adaptive.SLO
	// Limits holds the overload-degradation bounds.
	Limits = adaptive.Limits
)

// Partition configures hash-partitioned scale-out inside Config: when
// Attr is non-empty, NewEngine hash-partitions the stream on that
// attribute across Shards sub-engines, each built from the same Config.
// The query must be PartitionableBy(Attr) — every component linked by
// equality on it — or NewEngine fails; matches could otherwise span
// partitions and be lost. Shards defaults to 1 when Attr is set.
type Partition struct {
	// Attr is the partition attribute, e.g. "id". Empty disables
	// partitioning.
	Attr string
	// Shards is the number of sub-engines; 0 with a non-empty Attr means 1.
	Shards int
}

// Batch configures the batched ingestion path Engine.Run (and the CLIs)
// drive: events are accumulated into slices of up to Size and handed to
// ProcessBatch in one call, amortizing per-event pipeline overhead. The
// BatchProcessor contract guarantees output identical to per-event
// processing (enforced by the differential harness), so batching is purely
// a throughput/latency trade.
type Batch struct {
	// Size is the maximum events per batch. 0 or 1 keeps the classic
	// per-event path.
	Size int
	// Linger bounds how long Run waits for a partial batch to fill before
	// processing it anyway. 0 never waits: whatever is immediately
	// available on the input channel forms the batch (latency-first;
	// batching then adapts to backlog). Requires Size > 1.
	Linger time.Duration
}

// LatencySLO attaches a multi-window burn-rate tracker to the latency
// sampler: every sampled event whose end-to-end wall-clock latency is at
// or below Objective counts good, and the tracker reports the error-budget
// burn rate over rolling windows (short windows catch fast burns, long
// windows slow ones). Requires Latency.SampleEvery > 0 — the tracker is
// fed by sampled spans.
type LatencySLO struct {
	// Objective is the per-event wall-clock latency objective. Zero
	// disables SLO tracking.
	Objective time.Duration
	// Target is the fraction of events that must meet the objective
	// (e.g. 0.99). 0 means 0.99; must be below 1 (a 100% target leaves no
	// error budget to burn).
	Target float64
	// Windows are the rolling burn-rate windows; nil means 1m, 5m, 30m.
	Windows []time.Duration
}

// Latency configures sampled wall-clock latency attribution: a
// deterministic 1-in-N sample of events (by sequence number, rounded up to
// a power of two) is span-tracked through the pipeline, decomposing each
// sampled event's real elapsed time into stage durations — queue wait,
// reorder-buffer residency, WAL+commit, match construction, emit — whose
// sum equals the end-to-end wall time by construction. This complements
// the logical instruments (result latency, watermark lag), which measure
// stream time and cannot see scheduling, batching linger, or backpressure.
//
// The sample decision never perturbs engine behavior (match output is
// byte-identical with sampling on or off — enforced by the differential
// harness), and a zero SampleEvery leaves every call site as a single
// predictable nil-check branch with no allocation.
type Latency struct {
	// SampleEvery samples one in N events; rounded up to a power of two.
	// 0 disables the sampler entirely.
	SampleEvery int
	// SLO optionally tracks an error-budget burn rate over the sampled
	// wall latencies; see LatencySLO.
	SLO LatencySLO
}

// validate is shared by Config and QuerySetConfig.
func (l Latency) validate() error {
	if l.SampleEvery < 0 {
		return fmt.Errorf("Latency.SampleEvery must be >= 0, got %d", l.SampleEvery)
	}
	if l.SLO.Objective < 0 {
		return fmt.Errorf("Latency.SLO.Objective must be >= 0, got %s", l.SLO.Objective)
	}
	if l.SLO.Target < 0 || l.SLO.Target >= 1 {
		return fmt.Errorf("Latency.SLO.Target must be in [0, 1), got %g", l.SLO.Target)
	}
	if l.SLO.Objective > 0 && l.SampleEvery == 0 {
		return fmt.Errorf("Latency.SLO requires Latency.SampleEvery > 0: the tracker is fed by sampled spans")
	}
	for _, w := range l.SLO.Windows {
		if w < time.Second {
			return fmt.Errorf("Latency.SLO.Windows entries must be >= 1s, got %s", w)
		}
	}
	return nil
}

// Config configures an Engine.
type Config struct {
	// Strategy selects the engine; default StrategyNative.
	Strategy Strategy
	// K is the disorder bound (slack) in logical milliseconds: no event is
	// assumed to arrive more than K time units after the maximum timestamp
	// seen. Ignored by StrategyInOrder.
	K Time
	// BestEffortLate makes the native engine process bound-violating
	// events instead of dropping them (completeness is then best-effort).
	BestEffortLate bool
	// DisableTriggerOpt disables the native engine's scan optimization
	// (ablation knob; results are unchanged, CPU cost rises).
	DisableTriggerOpt bool
	// DisableKeyedStacks disables the native engine's key-partitioned
	// stacks, which auto-enable when the query is provably partitionable by
	// an equivalence attribute (see Query.AutoPartitionKey). Ablation knob;
	// results are unchanged, construction cost rises with key cardinality.
	DisableKeyedStacks bool
	// PurgeEvery runs state purging every PurgeEvery events; 0 = default
	// (64), negative = never (ablation knob; memory then grows unbounded).
	PurgeEvery int
	// OrderedOutput buffers matches so they are emitted in timestamp
	// order (by last element) instead of completion order, at a latency
	// cost bounded by K. Not available with StrategySpeculate
	// (retractions cannot be order-buffered).
	OrderedOutput bool
	// Partition hash-partitions the stream across sub-engines when
	// Partition.Attr is set; see Partition. On aggregate queries the
	// attribute must equal the GROUP BY attribute, so each key group's
	// windows live wholly on one shard.
	Partition Partition
	// Provenance makes every emitted (and retracted) match carry a lineage
	// record (Match.Prov): the contributing events, key group, window
	// bounds, trigger and traversal detail, and — for retractions — the
	// late event that invalidated the result. Off by default; when off the
	// engines skip all record construction (one predictable branch per
	// emission). Lineage is NOT checkpointed: matches sealed after a
	// Restore carry records marked Truncated. See Engine.StateSnapshot for
	// the companion live-state view.
	Provenance bool
	// Observer, when non-nil, publishes the engine's counters, gauges, and
	// latency/watermark-lag histograms as live named series in the registry
	// (scrapeable over HTTP via internal/obsv/httpx — the CLIs' -listen
	// flag). A single engine publishes one series named after its strategy;
	// a partitioned engine publishes one series per shard
	// ("native/shard0", …) plus a routing-layer series. Observer and Trace
	// are the only instrumentation injection points.
	Observer *Observer
	// Trace, when non-nil, receives a TraceEvent on every match-lifecycle
	// step (admit, drop, stack push, predecessor repair, construction
	// trigger, emit, retract, purge, heartbeat, flush). Nil costs one
	// predictable branch per step.
	Trace TraceHook
	// Batch configures batched ingestion for Engine.Run; the zero value
	// keeps the per-event path. Direct ProcessBatch calls work regardless.
	Batch Batch
	// Latency configures sampled wall-clock latency attribution: per-stage
	// span timing on a deterministic 1-in-N event sample, an end-to-end
	// wall histogram, and an optional SLO burn-rate tracker. Read it back
	// via Engine.LatencyReport, StateSnapshot.Latency, or — with Observer
	// set — the /metrics, /varz, and /debug/latency HTTP surfaces. The
	// zero value disables sampling at zero cost.
	Latency Latency
	// Adaptive configures dynamic disorder control: Enabled re-derives K
	// online as a lag quantile (Config.K then only seeds the controller,
	// via InitialK when set, else K); Limits adds overload degradation
	// (deterministic oldest-first shedding when state or lag exceeds the
	// bounds); SLO drives StrategyHybrid's switching. Applies to the
	// native, kslack, speculate, and hybrid strategies; incompatible with
	// StrategyInOrder, BestEffortLate, and (Enabled) OrderedOutput. With
	// Partition set, every shard runs its own controller over its share of
	// the stream.
	Adaptive Adaptive
}

func (c Config) withDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = StrategyNative
	}
	if c.Partition.Attr != "" && c.Partition.Shards == 0 {
		c.Partition.Shards = 1
	}
	return c
}

func (c Config) validate() error {
	if c.K < 0 {
		return fmt.Errorf("K must be >= 0, got %d", c.K)
	}
	if c.Partition.Attr == "" && c.Partition.Shards != 0 {
		return fmt.Errorf("Partition.Shards set without Partition.Attr")
	}
	if c.Partition.Attr != "" && c.Partition.Shards < 0 {
		return fmt.Errorf("Partition.Shards must be >= 0, got %d", c.Partition.Shards)
	}
	if c.BestEffortLate && c.Strategy != StrategyNative {
		return fmt.Errorf("BestEffortLate applies only to %q", StrategyNative)
	}
	if c.DisableTriggerOpt && c.Strategy != StrategyNative {
		return fmt.Errorf("DisableTriggerOpt applies only to %q", StrategyNative)
	}
	if c.DisableKeyedStacks && c.Strategy != StrategyNative {
		return fmt.Errorf("DisableKeyedStacks applies only to %q", StrategyNative)
	}
	if c.OrderedOutput && c.Strategy == StrategySpeculate {
		return fmt.Errorf("OrderedOutput cannot buffer %q retractions", StrategySpeculate)
	}
	if c.Batch.Size < 0 {
		return fmt.Errorf("Batch.Size must be >= 0, got %d", c.Batch.Size)
	}
	if c.Batch.Linger < 0 {
		return fmt.Errorf("Batch.Linger must be >= 0, got %s", c.Batch.Linger)
	}
	if c.Batch.Linger > 0 && c.Batch.Size <= 1 {
		return fmt.Errorf("Batch.Linger requires Batch.Size > 1")
	}
	if err := c.Latency.validate(); err != nil {
		return err
	}
	if _, err := c.adaptiveConfig().Normalized(); err != nil {
		return fmt.Errorf("Adaptive: %w", err)
	}
	if c.adaptiveActive() {
		if c.Strategy == StrategyInOrder {
			return fmt.Errorf("Adaptive disorder control is meaningless for %q (no disorder bound)", StrategyInOrder)
		}
		if c.BestEffortLate {
			return fmt.Errorf("Adaptive disorder control requires dropping late events (BestEffortLate breaks the static-max-K equivalence)")
		}
	}
	if c.Adaptive.Enabled && c.OrderedOutput {
		return fmt.Errorf("OrderedOutput needs a fixed reorder bound; it cannot follow a dynamic K")
	}
	if c.Strategy == StrategyHybrid && c.OrderedOutput {
		return fmt.Errorf("OrderedOutput cannot buffer %q retractions", StrategyHybrid)
	}
	return nil
}

// adaptiveActive reports whether the config calls for an adaptive
// controller on the non-hybrid strategies: dynamic K or degradation
// limits. (StrategyHybrid always runs a controller.)
func (c Config) adaptiveActive() bool {
	return c.Adaptive.Enabled || c.Adaptive.Limits != (Limits{})
}

// adaptiveConfig maps the facade config to the controller's: Config.K
// seeds InitialK unless the Adaptive block sets its own.
func (c Config) adaptiveConfig() Adaptive {
	ac := c.Adaptive
	if ac.InitialK == 0 {
		ac.InitialK = c.K
	}
	return ac
}

// adaptiveController builds the per-engine controller, or nil when the
// config doesn't call for one. Each call returns a fresh controller —
// partitioned configs get one per shard, each owned (fed) by its engine.
func (c Config) adaptiveController() (*adaptive.Controller, error) {
	if !c.adaptiveActive() {
		return nil, nil
	}
	return adaptive.NewController(c.adaptiveConfig())
}

func (c Config) corePolicy() core.LatePolicy {
	if c.BestEffortLate {
		return core.BestEffort
	}
	return core.DropLate
}
