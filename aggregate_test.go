package oostream

import (
	"bytes"
	"context"
	"testing"
)

// aggQuery compiles a small grouped aggregate over an id-linked pair
// pattern; every test that needs a generic AGGREGATE query shares it.
func aggQuery(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasAggregate() {
		t.Fatalf("query %q compiled without an aggregate", src)
	}
	return q
}

func aggEvent(typ string, ts Time, seq Seq, id, v int64) Event {
	return Event{Type: typ, TS: ts, Seq: seq, Attrs: Attrs{"id": Int(id), "v": Int(v)}}
}

// TestAggregateHandComputed pins the full emitted window set of a tiny
// tumbling SUM stream against values computed by hand, through the Result
// view.
func TestAggregateHandComputed(t *testing.T) {
	q := aggQuery(t, "AGGREGATE SUM(b.v) OVER SEQ(A a, B b) WHERE a.id = b.id WITHIN 10")
	en := MustNewEngine(q, Config{K: 2})
	events := []Event{
		aggEvent("A", 1, 1, 1, 0),
		aggEvent("B", 3, 2, 1, 5), // match (A@1,B@3) -> window (0,10]
		aggEvent("A", 12, 3, 2, 0),
		aggEvent("B", 15, 4, 2, 7), // match (A@12,B@15) -> window (10,20]
		aggEvent("B", 16, 5, 9, 1), // no A with id 9: contributes nothing
	}
	rs := en.ProcessAllResults(events)
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2: %v", len(rs), rs)
	}
	want := []struct {
		end Time
		sum int64
	}{{10, 5}, {20, 7}}
	for i, r := range rs {
		if r.Kind() != ResultAggregate {
			t.Fatalf("result %d kind = %s, want aggregate", i, r.Kind())
		}
		if r.Retracted() {
			t.Fatalf("result %d retracted in sealed mode", i)
		}
		a, ok := r.Aggregate()
		if !ok {
			t.Fatalf("result %d has no aggregate payload", i)
		}
		if a.Func != "SUM" || a.WindowEnd != want[i].end || a.WindowStart != want[i].end-10 {
			t.Errorf("result %d window = %s(%d,%d], want SUM(%d,%d]",
				i, a.Func, a.WindowStart, a.WindowEnd, want[i].end-10, want[i].end)
		}
		if a.Value != Int(want[i].sum) || a.Count != 1 {
			t.Errorf("result %d value = %s count=%d, want %d count=1", i, a.Value, a.Count, want[i].sum)
		}
		if a.HasGroup {
			t.Errorf("result %d grouped without GROUP BY", i)
		}
		if r.String() == "" {
			t.Errorf("result %d has empty String()", i)
		}
	}
}

// TestAggregateAllStrategiesAgree runs a grouped AVG with HAVING through
// every strategy on a disordered stream; applied retractions must converge
// every strategy to the in-order engine's output on the sorted stream.
func TestAggregateAllStrategiesAgree(t *testing.T) {
	q := aggQuery(t, `
		AGGREGATE AVG(b.v) OVER SEQ(A a, B b)
		WHERE a.id = b.id
		WITHIN 8 SLIDE 4
		GROUP BY a.id
		HAVING w.count >= 1`)
	sorted := []Event{
		aggEvent("A", 1, 1, 1, 0),
		aggEvent("B", 2, 2, 1, 4),
		aggEvent("A", 3, 3, 2, 0),
		aggEvent("B", 5, 4, 2, 6),
		aggEvent("B", 6, 5, 1, 2),
		aggEvent("A", 9, 6, 1, 0),
		aggEvent("B", 12, 7, 1, 8),
		aggEvent("A", 14, 8, 2, 0),
		aggEvent("B", 17, 9, 2, 3),
	}
	disordered := []Event{
		sorted[1], sorted[0], sorted[3], sorted[2], sorted[5],
		sorted[4], sorted[6], sorted[8], sorted[7],
	}
	want := make([]Match, 0)
	for _, r := range MustNewEngine(q, Config{Strategy: StrategyInOrder}).ProcessAllResults(sorted) {
		want = append(want, r.Match())
	}
	if len(want) == 0 {
		t.Fatal("no windows in sanity workload")
	}
	for _, s := range Strategies() {
		in := disordered
		if s == StrategyInOrder {
			// The in-order strategy presumes sorted arrival.
			in = sorted
		}
		got := make([]Match, 0)
		for _, r := range MustNewEngine(q, Config{Strategy: s, K: 3}).ProcessAllResults(in) {
			got = append(got, r.Match())
		}
		if ok, diff := SameResults(want, got); !ok {
			t.Errorf("strategy %s diverges:\n%s", s, diff)
		}
	}
}

// TestAggregatePartitionedGroupBy checks that sharding on the GROUP BY
// attribute yields the same window set as the unpartitioned engine.
func TestAggregatePartitionedGroupBy(t *testing.T) {
	q := aggQuery(t, `
		AGGREGATE COUNT(*) OVER SEQ(A a, B b)
		WHERE a.id = b.id
		WITHIN 10
		GROUP BY a.id`)
	var events []Event
	seq := Seq(1)
	for k := Time(0); k < 40; k += 7 {
		for id := int64(0); id < 5; id++ {
			events = append(events, aggEvent("A", k+Time(id), seq, id, 0))
			seq++
			events = append(events, aggEvent("B", k+Time(id)+2, seq, id, 1))
			seq++
		}
	}
	want := MustNewEngine(q, Config{K: 5}).ProcessAll(events)
	if len(want) == 0 {
		t.Fatal("no windows in sanity workload")
	}
	sharded, err := NewEngine(q, Config{K: 5, Partition: Partition{Attr: "id", Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	got := sharded.ProcessAll(events)
	if ok, diff := SameResults(want, got); !ok {
		t.Errorf("partitioned aggregation diverges:\n%s", diff)
	}
}

// TestAggregateCheckpointRoundTrip snapshots a native aggregate engine
// mid-stream and checks the restored engine finishes the stream with the
// same windows as the uninterrupted run.
func TestAggregateCheckpointRoundTrip(t *testing.T) {
	q := aggQuery(t, `
		AGGREGATE MAX(b.v) OVER SEQ(A a, B b)
		WHERE a.id = b.id
		WITHIN 6 SLIDE 3
		GROUP BY a.id`)
	var events []Event
	seq := Seq(1)
	for k := Time(0); k < 30; k++ {
		events = append(events, aggEvent("A", k, seq, int64(k)%3, int64(k)%5))
		seq++
		events = append(events, aggEvent("B", k+1, seq, int64(k)%3, int64(k)%7))
		seq++
	}
	cut := len(events) / 2

	whole := MustNewEngine(q, Config{K: 4})
	var want []Match
	for _, ev := range events {
		want = append(want, whole.Process(ev)...)
	}
	want = append(want, whole.Flush()...)

	first := MustNewEngine(q, Config{K: 4})
	var got []Match
	for _, ev := range events[:cut] {
		got = append(got, first.Process(ev)...)
	}
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(q, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[cut:] {
		got = append(got, restored.Process(ev)...)
	}
	got = append(got, restored.Flush()...)
	if ok, diff := SameResults(want, got); !ok {
		t.Errorf("restored run diverges from uninterrupted run:\n%s", diff)
	}
}

// TestAggregateRunResults drives the channel pipeline under the Result
// view.
func TestAggregateRunResults(t *testing.T) {
	q := aggQuery(t, "AGGREGATE COUNT(*) OVER SEQ(A a, B b) WHERE a.id = b.id WITHIN 10")
	en := MustNewEngine(q, Config{K: 2})
	in := make(chan Event, 8)
	out := make(chan Result, 8)
	go func() {
		in <- aggEvent("A", 1, 1, 1, 0)
		in <- aggEvent("B", 3, 2, 1, 1)
		close(in)
	}()
	errc := make(chan error, 1)
	go func() { errc <- en.RunResults(context.Background(), in, out) }()
	var rs []Result
	for r := range out {
		rs = append(rs, r)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1: %v", len(rs), rs)
	}
	a, ok := rs[0].Aggregate()
	if !ok || a.Func != "COUNT" || a.Count != 1 {
		t.Fatalf("aggregate = %+v ok=%v, want COUNT of 1", a, ok)
	}
}

// TestResultViewOfPatternMatch checks the Result view of a plain pattern
// query: kind match, no aggregate payload, underlying match intact.
func TestResultViewOfPatternMatch(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b) WHERE a.id = b.id WITHIN 10", nil)
	if q.HasAggregate() {
		t.Fatal("pattern query reports an aggregate")
	}
	en := MustNewEngine(q, Config{K: 1})
	en.ProcessResults(aggEvent("A", 1, 1, 1, 0))
	rs := en.ProcessResults(aggEvent("B", 2, 2, 1, 0))
	rs = append(rs, en.FlushResults()...)
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	r := rs[0]
	if r.Kind() != ResultMatch {
		t.Fatalf("kind = %s, want match", r.Kind())
	}
	if _, ok := r.Aggregate(); ok {
		t.Error("pattern match has an aggregate payload")
	}
	if len(r.Match().Events) != 2 {
		t.Errorf("underlying match has %d events, want 2", len(r.Match().Events))
	}
	if ResultMatch.String() != "match" || ResultAggregate.String() != "aggregate" {
		t.Error("ResultKind.String misnames the kinds")
	}
}
