package oostream

import (
	"oostream/internal/obsv"
	"oostream/internal/provenance"
)

// Observability re-exports. The live observability layer has two parts,
// both injected through Config (the sole injection points):
//
//   - Config.Observer (*Observer): a registry of named metric series every
//     engine publishes into — atomic counters, gauges, and fixed-bucket
//     histograms for logical/arrival latency and watermark lag. Serve it
//     over HTTP with the CLIs' -listen flag (Prometheus text on /metrics,
//     JSON on /varz) or render it directly with Observer.WritePrometheus.
//   - Config.Trace (TraceHook): a callback fired on every match-lifecycle
//     step. A nil hook costs one predictable branch; a FlightRecorder is a
//     bounded in-memory hook suitable for production flight recording.
type (
	// Observer is a registry of live metric series; see NewObserver.
	Observer = obsv.Registry
	// TraceHook observes match-lifecycle steps; see TraceFunc and
	// FlightRecorder for ready-made implementations.
	TraceHook = obsv.TraceHook
	// TraceEvent is one lifecycle step delivered to a TraceHook.
	TraceEvent = obsv.TraceEvent
	// TraceFunc adapts a function to the TraceHook interface.
	TraceFunc = obsv.TraceFunc
	// TraceOp enumerates lifecycle steps (OpAdmit, OpEmit, …).
	TraceOp = obsv.Op
	// FlightRecorder is a bounded ring-buffer TraceHook: it keeps the most
	// recent N trace events for post-hoc inspection (and is served on
	// /debug/flight by the CLIs' -listen endpoint).
	FlightRecorder = obsv.FlightRecorder
	// MultiHook fans one trace stream out to several hooks.
	MultiHook = obsv.MultiHook
)

// Wall-clock latency attribution re-exports (see Config.Latency): a
// deterministic 1-in-N sample of events is span-tracked through the
// pipeline, decomposing real elapsed time into stage durations (queue,
// buffer, wal, construct, emit) whose sum equals the end-to-end wall time,
// with optional multi-window SLO burn-rate tracking on top. Read via
// Engine.LatencyReport / SupervisedEngine.LatencyReport,
// StateSnapshot.Latency, or the /debug/latency HTTP endpoint.
type (
	// LatencyReport is the JSON-ready attribution digest: span accounting,
	// the wall histogram, per-stage summaries, and SLO windows.
	LatencyReport = obsv.LatencyReport
	// LatencyHistSummary digests one latency histogram (count, mean, p50,
	// p95, p99, max, sum — all in microseconds).
	LatencyHistSummary = obsv.HistSummary
	// SLOSnapshot is the burn-rate tracker's window state.
	SLOSnapshot = obsv.SLOSnapshot
	// SLOWindow is one rolling window's good/bad counts and burn rate.
	SLOWindow = obsv.SLOWindow
)

// Provenance re-exports. With Config.Provenance set, every emitted (and
// retracted) match carries a Lineage record in Match.Prov, and engines
// answer StateSnapshot with a live read-only view of their internal state
// (served on /debug/state by the CLIs' -listen endpoint and rendered by
// cmd/espexplain).
type (
	// Lineage is a per-match provenance record: the contributing events,
	// key group, window bounds, trigger detail, and — for retractions —
	// the late event that invalidated the result.
	Lineage = provenance.Record
	// LineageRef identifies one contributing event inside a Lineage.
	LineageRef = provenance.EventRef
	// StateSnapshot is a read-only view of an engine's live state; see
	// Engine.StateSnapshot.
	StateSnapshot = provenance.StateSnapshot
	// KeyGroupStat is one entry of StateSnapshot.TopKeyGroups.
	KeyGroupStat = provenance.KeyGroupStat
	// LineageStats summarizes lineage retention inside a StateSnapshot.
	LineageStats = provenance.LineageStats
)

// Lineage kinds, re-exported.
const (
	// LineageInsert marks the lineage of an emitted result.
	LineageInsert = provenance.KindInsert
	// LineageRetract marks the lineage of a retraction compensation.
	LineageRetract = provenance.KindRetract
)

// Observability constructors, re-exported.
var (
	// NewObserver creates an empty metrics registry for Config.Observer.
	NewObserver = obsv.NewRegistry
	// NewFlightRecorder creates a ring-buffer TraceHook holding the most
	// recent n events.
	NewFlightRecorder = obsv.NewFlightRecorder
)

// Trace operations, re-exported.
const (
	OpAdmit      = obsv.OpAdmit
	OpDrop       = obsv.OpDrop
	OpStackPush  = obsv.OpStackPush
	OpRepair     = obsv.OpRepair
	OpTrigger    = obsv.OpTrigger
	OpEmit       = obsv.OpEmit
	OpRetract    = obsv.OpRetract
	OpPurge      = obsv.OpPurge
	OpHeartbeat  = obsv.OpHeartbeat
	OpCheckpoint = obsv.OpCheckpoint
	OpRestart    = obsv.OpRestart
	OpFlush      = obsv.OpFlush
)
