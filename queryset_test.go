package oostream

import (
	"bytes"
	"fmt"
	"testing"

	"oostream/internal/gen"
)

// querySetFixture builds a disordered RFID stream plus two queries over
// disjoint aspects of it: the shoplifting negation query and a plain
// shelf-to-exit sequence.
func querySetFixture(t *testing.T) (seq, neg *Query, events []Event) {
	t.Helper()
	seq = MustCompile("PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN 6s", gen.RFIDSchema())
	neg = rfidQuery(t)
	sorted := gen.RFID(gen.DefaultRFID(120, 9))
	return seq, neg, gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: 400, Seed: 10})
}

// TestQuerySetMatchesIndependentEngines is the basic contract: each
// registered query's tagged output equals a dedicated single-query engine
// on the same arrival order, for every strategy.
func TestQuerySetMatchesIndependentEngines(t *testing.T) {
	seq, neg, events := querySetFixture(t)
	for _, st := range Strategies() {
		if st == StrategyHybrid {
			// Rejected by QuerySetConfig.validate: inner engines run behind
			// the shared reorder buffer, so the meta-engine never observes
			// disorder and never switches.
			if _, err := NewQuerySet(QuerySetConfig{Strategy: st, K: 400}); err == nil {
				t.Fatalf("QuerySet accepted strategy %q", st)
			}
			continue
		}
		set := MustNewQuerySet(QuerySetConfig{Strategy: st, K: 400})
		if err := set.Register("seq", seq); err != nil {
			t.Fatal(err)
		}
		if err := set.Register("neg", neg); err != nil {
			t.Fatal(err)
		}
		byID := map[string][]Match{}
		for _, m := range set.ProcessAll(events) {
			byID[m.Query] = append(byID[m.Query], m)
		}
		// The shared buffer sorts the stream, which upgrades the in-order
		// inner engines to exactly a standalone K-slack run.
		base := st
		if st == StrategyInOrder {
			base = StrategyKSlack
		}
		for id, q := range map[string]*Query{"seq": seq, "neg": neg} {
			want := MustNewEngine(q, Config{Strategy: base, K: 400}).ProcessAll(events)
			if ok, diff := SameResults(want, byID[id]); !ok {
				t.Errorf("%s/%s differs from independent engine:\n%s", st, id, diff)
			}
		}
	}
}

// TestQuerySetGatingSkips checks the event-type index and prefix gates do
// real work: on a stream where most events cannot extend any open prefix,
// Stats must report skipped probes without costing any matches.
func TestQuerySetGatingSkips(t *testing.T) {
	// EXIT events gate on a SHELF for the same id within the window; ids
	// 50.. never see a SHELF, so every one of their EXITs must be skipped.
	q := MustCompile("PATTERN SEQ(SHELF s, EXIT e) WHERE s.id = e.id WITHIN 100", nil)
	var events []Event
	ts := Time(0)
	for i := 0; i < 400; i++ {
		ts += 10
		id := int64(i % 100)
		typ := "EXIT"
		if id < 50 && i%2 == 0 {
			typ = "SHELF"
		}
		events = append(events, NewEvent(typ, ts, Attrs{"id": Int(id)}))
	}
	set := MustNewQuerySet(QuerySetConfig{K: 50})
	if err := set.Register("q", q); err != nil {
		t.Fatal(err)
	}
	got := set.ProcessAll(events)
	want := MustNewEngine(q, Config{K: 50}).ProcessAll(events)
	if ok, diff := SameResults(want, got); !ok {
		t.Fatalf("gated output differs:\n%s", diff)
	}
	st := set.Stats()
	if len(st) != 1 || st[0].ID != "q" {
		t.Fatalf("Stats() = %+v", st)
	}
	if st[0].Skipped == 0 {
		t.Error("prefix gate never skipped a probe on a mostly-irrelevant stream")
	}
	if st[0].Dispatched == 0 {
		t.Error("no events dispatched at all")
	}
	if st[0].Dispatched+st[0].Skipped > uint64(len(events)) {
		t.Errorf("dispatched %d + skipped %d exceeds %d admitted events",
			st[0].Dispatched, st[0].Skipped, len(events))
	}
}

// TestQuerySetUnregister checks mid-stream removal: the final flush of the
// departing query is returned by Unregister, the registry shrinks, and the
// remaining query is untouched.
func TestQuerySetUnregister(t *testing.T) {
	seq, neg, events := querySetFixture(t)
	set := MustNewQuerySet(QuerySetConfig{K: 400})
	for id, q := range map[string]*Query{"seq": seq, "neg": neg} {
		if err := set.Register(id, q); err != nil {
			t.Fatal(err)
		}
	}
	var out []Match
	half := len(events) / 2
	for _, ev := range events[:half] {
		out = append(out, set.Process(ev)...)
	}
	fin, err := set.Unregister("neg")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range fin {
		if m.Query != "neg" {
			t.Fatalf("Unregister flush tagged %q, want \"neg\"", m.Query)
		}
	}
	if got := set.Queries(); len(got) != 1 || got[0] != "seq" {
		t.Fatalf("Queries() after Unregister = %v", got)
	}
	if _, err := set.Unregister("neg"); err == nil {
		t.Error("Unregister of an unknown id succeeded")
	}
	for _, ev := range events[half:] {
		out = append(out, set.Process(ev)...)
	}
	out = append(out, set.Flush()...)
	for _, m := range out[len(fin):] {
		if m.Query == "neg" {
			// Matches tagged neg may only appear before the removal.
			break
		}
	}
	var seqGot []Match
	for _, m := range out {
		if m.Query == "seq" {
			seqGot = append(seqGot, m)
		}
	}
	want := MustNewEngine(seq, Config{K: 400}).ProcessAll(events)
	if ok, diff := SameResults(want, seqGot); !ok {
		t.Errorf("surviving query perturbed by Unregister:\n%s", diff)
	}
}

// TestQuerySetCheckpointRoundtrip checkpoints a half-ingested native set
// and verifies the restored set continues with the exact same tagged
// emission sequence as the original.
func TestQuerySetCheckpointRoundtrip(t *testing.T) {
	seq, neg, events := querySetFixture(t)
	cfg := QuerySetConfig{K: 400, AdvanceEvery: 7}
	mk := func() *QuerySet {
		set := MustNewQuerySet(cfg)
		for id, q := range map[string]*Query{"seq": seq, "neg": neg} {
			if err := set.Register(id, q); err != nil {
				t.Fatal(err)
			}
		}
		return set
	}
	orig, cut := mk(), len(events)/2
	for _, ev := range events[:cut] {
		orig.Process(ev)
	}
	var blob bytes.Buffer
	if err := orig.Checkpoint(&blob); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreQuerySet(cfg, &blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Queries(); len(got) != 2 {
		t.Fatalf("restored registry = %v", got)
	}
	var want, got []Match
	for _, ev := range events[cut:] {
		want = append(want, orig.Process(ev)...)
		got = append(got, restored.Process(ev)...)
	}
	want = append(want, orig.Flush()...)
	got = append(got, restored.Flush()...)
	if len(want) != len(got) {
		t.Fatalf("continuation emitted %d matches, original %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() || want[i].Query != got[i].Query || want[i].Kind != got[i].Kind {
			t.Fatalf("emission %d: original %v %s (%s), restored %v %s (%s)",
				i, want[i].Kind, want[i].Key(), want[i].Query,
				got[i].Kind, got[i].Key(), got[i].Query)
		}
	}
}

// TestQuerySetSealed pins the post-Flush surface: Register and Unregister
// error, Process panics, a second Flush is a silent no-op.
func TestQuerySetSealed(t *testing.T) {
	seq, _, events := querySetFixture(t)
	set := MustNewQuerySet(QuerySetConfig{K: 400})
	if err := set.Register("seq", seq); err != nil {
		t.Fatal(err)
	}
	set.ProcessAll(events)
	if err := set.Register("late", seq); err == nil {
		t.Error("Register after Flush succeeded")
	}
	if _, err := set.Unregister("seq"); err == nil {
		t.Error("Unregister after Flush succeeded")
	}
	if got := set.Flush(); got != nil {
		t.Errorf("second Flush returned %d matches", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Error("Process after Flush did not panic")
		}
	}()
	set.Process(events[0])
}

// TestQuerySetConfigValidation exercises construction errors.
func TestQuerySetConfigValidation(t *testing.T) {
	if _, err := NewQuerySet(QuerySetConfig{Strategy: "warp"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := NewQuerySet(QuerySetConfig{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	set := MustNewQuerySet(QuerySetConfig{})
	if err := set.Register("", rfidQuery(t)); err == nil {
		t.Error("empty query id accepted")
	}
	if err := set.Register("a", rfidQuery(t)); err != nil {
		t.Fatal(err)
	}
	if err := set.Register("a", rfidQuery(t)); err == nil {
		t.Error("duplicate query id accepted")
	}
	if _, err := RestoreQuerySet(QuerySetConfig{Strategy: StrategySpeculate}, bytes.NewReader(nil)); err == nil {
		t.Error("RestoreQuerySet accepted a non-checkpointable strategy")
	}
}

// TestProcessBatchEmptyNoOp is the documented contract that nil and empty
// batches are no-ops: they return nil and leave subsequent output exactly
// unchanged — for the single-query engine and the QuerySet, across every
// strategy.
func TestProcessBatchEmptyNoOp(t *testing.T) {
	seq, neg, events := querySetFixture(t)
	for _, st := range Strategies() {
		st := st
		t.Run(string(st), func(t *testing.T) {
			cfg := Config{Strategy: st, K: 400}
			plain := MustNewEngine(seq, cfg)
			noop := MustNewEngine(seq, cfg)
			var want, got []Match
			for i, ev := range events {
				if got2 := noop.ProcessBatch(nil); got2 != nil {
					t.Fatalf("ProcessBatch(nil) = %d matches, want nil", len(got2))
				}
				want = append(want, plain.Process(ev)...)
				got = append(got, noop.ProcessBatch(events[i:i+1])...)
				if got2 := noop.ProcessBatch([]Event{}); got2 != nil {
					t.Fatalf("ProcessBatch(empty) = %d matches, want nil", len(got2))
				}
			}
			want = append(want, plain.Flush()...)
			got = append(got, noop.Flush()...)
			if ok, diff := SameResults(want, got); !ok {
				t.Fatalf("engine output perturbed by no-op batches:\n%s", diff)
			}

			if st == StrategyHybrid {
				// QuerySet rejects the hybrid strategy (see validate).
				return
			}
			set := MustNewQuerySet(QuerySetConfig{Strategy: st, K: 400})
			for id, q := range map[string]*Query{"seq": seq, "neg": neg} {
				if err := set.Register(id, q); err != nil {
					t.Fatal(err)
				}
			}
			if out := set.ProcessBatch(nil); out != nil {
				t.Fatalf("QuerySet.ProcessBatch(nil) = %d matches, want nil", len(out))
			}
			if out := set.ProcessBatch([]Event{}); out != nil {
				t.Fatalf("QuerySet.ProcessBatch(empty) = %d matches, want nil", len(out))
			}
			setGot := set.ProcessAll(events)
			if len(setGot) == 0 {
				t.Fatal("no matches after no-op batches; fixture broken")
			}
		})
	}
}

// TestQuerySetStatsOrder pins Stats registration order and ids.
func TestQuerySetStatsOrder(t *testing.T) {
	set := MustNewQuerySet(QuerySetConfig{})
	for i := 0; i < 5; i++ {
		q := MustCompile(fmt.Sprintf("PATTERN SEQ(A%d a, B%d b) WITHIN 10", i, i), nil)
		if err := set.Register(fmt.Sprintf("q%d", i), q); err != nil {
			t.Fatal(err)
		}
	}
	st := set.Stats()
	if len(st) != 5 {
		t.Fatalf("Stats() has %d entries, want 5", len(st))
	}
	for i, s := range st {
		if s.ID != fmt.Sprintf("q%d", i) {
			t.Fatalf("Stats()[%d].ID = %q, want q%d (registration order)", i, s.ID, i)
		}
	}
}
