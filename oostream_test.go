package oostream

import (
	"context"
	"strings"
	"testing"

	"oostream/internal/gen"
)

func rfidQuery(t *testing.T) *Query {
	t.Helper()
	q, err := Compile(`
		PATTERN SEQ(SHELF s, !(COUNTER c), EXIT e)
		WHERE s.id = e.id AND s.id = c.id
		WITHIN 10s`, gen.RFIDSchema())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCompileWithSchema(t *testing.T) {
	q := rfidQuery(t)
	if q.PatternLen() != 2 || !q.HasNegation() || q.Window() != 10_000 {
		t.Errorf("query accessors: len=%d neg=%v win=%d", q.PatternLen(), q.HasNegation(), q.Window())
	}
	if !strings.Contains(q.Source(), "SEQ(SHELF s") {
		t.Errorf("Source() = %q", q.Source())
	}
	// Schema violations are compile errors.
	if _, err := Compile("PATTERN SEQ(SHELF s) WHERE s.nope = 1 WITHIN 5", gen.RFIDSchema()); err == nil {
		t.Error("bad attribute should fail compilation")
	}
	if _, err := Compile("PATTERN SEQ(", nil); err == nil {
		t.Error("syntax error should fail compilation")
	}
}

func TestAllStrategiesAgreeOnSortedInput(t *testing.T) {
	q := rfidQuery(t)
	events := gen.RFID(gen.DefaultRFID(200, 5))
	var ref []Match
	for i, s := range Strategies() {
		en, err := NewEngine(q, Config{Strategy: s, K: 1000})
		if err != nil {
			t.Fatal(err)
		}
		got := en.ProcessAll(events)
		if i == 0 {
			ref = got
			if len(ref) == 0 {
				t.Fatal("no shoplifting matches in sanity workload")
			}
			continue
		}
		if ok, diff := SameResults(ref, got); !ok {
			t.Errorf("strategy %s differs on sorted input:\n%s", s, diff)
		}
	}
}

func TestExactStrategiesAgreeUnderDisorder(t *testing.T) {
	q := rfidQuery(t)
	sorted := gen.RFID(gen.DefaultRFID(200, 6))
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: 2000, Seed: 7})

	want := MustNewEngine(q, Config{Strategy: StrategyInOrder}).ProcessAll(sorted)
	for _, s := range []Strategy{StrategyNative, StrategyKSlack, StrategySpeculate} {
		got := MustNewEngine(q, Config{Strategy: s, K: 2000}).ProcessAll(shuffled)
		if ok, diff := SameResults(want, got); !ok {
			t.Errorf("strategy %s wrong under disorder:\n%s", s, diff)
		}
	}
	// And the naive engine is NOT exact under disorder (sanity that the
	// experiment's premise holds).
	naive := MustNewEngine(q, Config{Strategy: StrategyInOrder}).ProcessAll(shuffled)
	if ok, _ := SameResults(want, naive); ok {
		t.Log("note: naive engine happened to be correct on this shuffle")
	}
}

func TestAutoSeqAssignment(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b) WITHIN 100", nil)
	en := MustNewEngine(q, Config{K: 10})
	en.Process(Event{Type: "A", TS: 1})
	out := en.Process(Event{Type: "B", TS: 2})
	if len(out) != 1 {
		t.Fatalf("matches = %v", out)
	}
	if out[0].Events[0].Seq == 0 || out[0].Events[1].Seq == 0 {
		t.Error("auto seq not assigned")
	}
	if out[0].Events[0].Seq == out[0].Events[1].Seq {
		t.Error("seqs must be unique")
	}
}

func TestConfigValidation(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a) WITHIN 10", nil)
	if _, err := NewEngine(q, Config{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := NewEngine(q, Config{Strategy: "bogus"}); err == nil {
		t.Error("bogus strategy accepted")
	}
	if _, err := NewEngine(q, Config{Strategy: StrategyKSlack, BestEffortLate: true}); err == nil {
		t.Error("BestEffortLate outside native accepted")
	}
	if _, err := NewEngine(q, Config{Strategy: StrategyKSlack, DisableTriggerOpt: true}); err == nil {
		t.Error("DisableTriggerOpt outside native accepted")
	}
	en, err := NewEngine(q, Config{})
	if err != nil || en.Strategy() != "native" {
		t.Errorf("default strategy: %v %v", en, err)
	}
}

func TestEngineRunPipeline(t *testing.T) {
	q := rfidQuery(t)
	sorted := gen.RFID(gen.DefaultRFID(100, 8))
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.2, MaxDelay: 1000, Seed: 9})
	want := MustNewEngine(q, Config{K: 1000}).ProcessAll(shuffled)

	en := MustNewEngine(q, Config{K: 1000})
	in := make(chan Event)
	out := make(chan Match, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- en.Run(context.Background(), in, out) }()
	go func() {
		for _, e := range shuffled {
			in <- e
		}
		close(in)
	}()
	var got []Match
	for m := range out {
		got = append(got, m)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if ok, diff := SameResults(want, got); !ok {
		t.Fatalf("pipeline output differs:\n%s", diff)
	}
}

func TestMetricsExposed(t *testing.T) {
	q := rfidQuery(t)
	sorted := gen.RFID(gen.DefaultRFID(100, 1))
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.3, MaxDelay: 1000, Seed: 2})
	en := MustNewEngine(q, Config{K: 1000})
	en.ProcessAll(shuffled)
	m := en.Metrics()
	if m.EventsIn == 0 || m.EventsOOO == 0 || m.PeakState == 0 {
		t.Errorf("metrics look empty: %+v", m)
	}
	if en.StateSize() < 0 {
		t.Error("state size negative")
	}
}

func TestOrderedOutputConfig(t *testing.T) {
	q := MustCompile("PATTERN SEQ(A a, B b) WITHIN 50", nil)
	sorted := gen.Uniform(200, []string{"A", "B"}, 3, 5, 61)
	shuffled := gen.Shuffle(sorted, gen.Disorder{Ratio: 0.4, MaxDelay: 40, Seed: 62})

	plain := MustNewEngine(q, Config{K: 40}).ProcessAll(shuffled)
	en := MustNewEngine(q, Config{K: 40, OrderedOutput: true})
	got := en.ProcessAll(shuffled)
	for i := 1; i < len(got); i++ {
		if got[i-1].Last().TS > got[i].Last().TS {
			t.Fatalf("output not ordered at %d", i)
		}
	}
	if ok, diff := SameResults(plain, got); !ok {
		t.Fatalf("ordered output changed results:\n%s", diff)
	}
	if en.Strategy() != "ordered(native)" {
		t.Errorf("Strategy = %q", en.Strategy())
	}
	if _, err := NewEngine(q, Config{Strategy: StrategySpeculate, K: 40, OrderedOutput: true}); err == nil {
		t.Fatal("speculate + ordered accepted")
	}
}
