package oostream

import (
	"strings"
	"testing"
	"time"
)

// TestConfigValidateRejections pins every rejection the facade config
// makes, so an accidental relaxation (or a new strategy forgetting a
// compatibility rule) fails loudly. Each case must be rejected with a
// message containing the fragment.
func TestConfigValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative K", Config{K: -1}, "K must be >= 0"},
		{"shards without attr", Config{Partition: Partition{Shards: 2}}, "without Partition.Attr"},
		{"negative shards", Config{Partition: Partition{Attr: "sensor", Shards: -1}}, "Shards must be >= 0"},
		{"best-effort non-native", Config{Strategy: StrategyKSlack, BestEffortLate: true}, "BestEffortLate applies only"},
		{"trigger-opt non-native", Config{Strategy: StrategyKSlack, DisableTriggerOpt: true}, "DisableTriggerOpt applies only"},
		{"keyed-stacks non-native", Config{Strategy: StrategySpeculate, DisableKeyedStacks: true}, "DisableKeyedStacks applies only"},
		{"ordered speculate", Config{Strategy: StrategySpeculate, OrderedOutput: true}, "cannot buffer"},
		{"negative batch size", Config{Batch: Batch{Size: -1}}, "Batch.Size must be >= 0"},
		{"negative linger", Config{Batch: Batch{Linger: -time.Second}}, "Batch.Linger must be >= 0"},
		{"linger without batching", Config{Batch: Batch{Size: 1, Linger: time.Second}}, "requires Batch.Size > 1"},
		{"negative initial K", Config{Adaptive: Adaptive{Enabled: true, InitialK: -1}}, "Adaptive"},
		{"quantile out of range", Config{Adaptive: Adaptive{Enabled: true, Quantile: 1.5}}, "Adaptive"},
		{"margin below one", Config{Adaptive: Adaptive{Enabled: true, Margin: 0.5}}, "Adaptive"},
		{"min above max", Config{Adaptive: Adaptive{Enabled: true, MinK: 10, MaxK: 5}}, "Adaptive"},
		{"negative buffer limit", Config{Adaptive: Adaptive{Limits: Limits{MaxBufferedEvents: -1}}}, "Adaptive"},
		{"adaptive inorder", Config{Strategy: StrategyInOrder, Adaptive: Adaptive{Enabled: true}}, "no disorder bound"},
		{"limits inorder", Config{Strategy: StrategyInOrder, Adaptive: Adaptive{Limits: Limits{MaxBufferedEvents: 10}}}, "no disorder bound"},
		{"adaptive best-effort", Config{Adaptive: Adaptive{Enabled: true}, BestEffortLate: true}, "static-max-K"},
		{"adaptive ordered", Config{Adaptive: Adaptive{Enabled: true}, OrderedOutput: true}, "dynamic K"},
		{"ordered hybrid", Config{Strategy: StrategyHybrid, OrderedOutput: true}, "cannot buffer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.withDefaults().validate()
			if err == nil {
				t.Fatalf("config %+v accepted, want rejection containing %q", tc.cfg, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

// TestConfigValidateAccepts pins the combinations that must keep working.
func TestConfigValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero value", Config{}},
		{"static kslack", Config{Strategy: StrategyKSlack, K: 100}},
		{"adaptive native", Config{K: 100, Adaptive: Adaptive{Enabled: true}}},
		{"adaptive kslack with limits", Config{Strategy: StrategyKSlack, K: 100,
			Adaptive: Adaptive{Enabled: true, Limits: Limits{MaxBufferedEvents: 1000}}}},
		{"limits only (degradation without dynamic K)", Config{Strategy: StrategySpeculate, K: 50,
			Adaptive: Adaptive{Limits: Limits{MaxLag: 500}}}},
		{"hybrid static", Config{Strategy: StrategyHybrid, K: 100}},
		{"hybrid adaptive with SLO", Config{Strategy: StrategyHybrid, K: 100,
			Adaptive: Adaptive{Enabled: true, SLO: SLO{MaxLatency: 200, MaxRetractionRate: 0.05}}}},
		{"ordered static non-adaptive", Config{Strategy: StrategyKSlack, K: 10, OrderedOutput: true}},
		{"partitioned adaptive", Config{K: 100, Partition: Partition{Attr: "sensor", Shards: 4},
			Adaptive: Adaptive{Enabled: true}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.withDefaults().validate(); err != nil {
				t.Fatalf("config %+v rejected: %v", tc.cfg, err)
			}
		})
	}
}

// TestConfigValidateWithQuery pins the query-aware checks NewEngine layers
// on top of the plain config validation: combinations that are fine for a
// pattern query but unsound for an AGGREGATE one.
func TestConfigValidateWithQuery(t *testing.T) {
	agg := MustCompile(`
		AGGREGATE COUNT(*) OVER SEQ(A a, B b)
		WHERE a.id = b.id WITHIN 10`, nil)
	grouped := MustCompile(`
		AGGREGATE SUM(b.v) OVER SEQ(A a, B b)
		WHERE a.id = b.id WITHIN 10
		GROUP BY a.id`, nil)
	rejections := []struct {
		name string
		q    *Query
		cfg  Config
		want string
	}{
		{"adaptive aggregate", agg,
			Config{K: 10, Adaptive: Adaptive{Enabled: true}},
			"cannot be combined with AGGREGATE"},
		{"degradation-limits aggregate", agg,
			Config{K: 10, Adaptive: Adaptive{Limits: Limits{MaxBufferedEvents: 100}}},
			"cannot be combined with AGGREGATE"},
		{"best-effort aggregate", agg,
			Config{K: 10, BestEffortLate: true},
			"BestEffortLate"},
		{"partitioned ungrouped aggregate", agg,
			Config{K: 10, Partition: Partition{Attr: "id", Shards: 2}},
			"cannot be partitioned"},
		{"partition attr differs from group attr", grouped,
			Config{K: 10, Partition: Partition{Attr: "sensor", Shards: 2}},
			"GROUP BY attribute"},
	}
	for _, tc := range rejections {
		t.Run(tc.name, func(t *testing.T) {
			en, err := NewEngine(tc.q, tc.cfg)
			if err == nil {
				t.Fatalf("engine %s constructed, want rejection containing %q", en.Strategy(), tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
	accepts := []struct {
		name string
		q    *Query
		cfg  Config
	}{
		{"plain aggregate", agg, Config{K: 10}},
		{"speculative aggregate", agg, Config{Strategy: StrategySpeculate, K: 10}},
		{"partition on the group attribute", grouped,
			Config{K: 10, Partition: Partition{Attr: "id", Shards: 3}}},
	}
	for _, tc := range accepts {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewEngine(tc.q, tc.cfg); err != nil {
				t.Fatalf("config %+v rejected for %q: %v", tc.cfg, tc.q.Source(), err)
			}
		})
	}
}
